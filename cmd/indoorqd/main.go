// Command indoorqd is the networked serving daemon: a long-lived HTTP
// process answering indoor range and kNN queries, accepting object and
// topology mutations, streaming subscription events, and — on a durable
// leader — shipping its write-ahead log to read replicas.
//
// Leader (durable, with replication feed):
//
//	indoorqd -addr :7070 -dir /var/lib/indoorq
//
// An empty or missing -dir is seeded with a synthetic mall (-floors,
// -objects control its size); an existing store directory is recovered.
// Omitting -dir runs an ephemeral leader (no durability, no replication
// feed).
//
// Read replica (bootstraps from the leader's checkpoint, then follows
// its WAL; serves queries and stats, refuses mutations):
//
//	indoorqd -addr :7071 -follow http://leader:7070
//
// SIGINT/SIGTERM shut down gracefully: the listener drains, streams
// close, and a leader's store flushes and fsyncs its log.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	indoorq "repro"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "listen address")
		dir      = flag.String("dir", "", "store directory (leader mode); empty runs an ephemeral leader")
		follow   = flag.String("follow", "", "leader URL; makes this daemon a read replica")
		floors   = flag.Int("floors", 2, "synthetic mall floors when seeding a fresh store")
		objects  = flag.Int("objects", 2000, "synthetic objects when seeding a fresh store")
		window   = flag.Duration("coalesce", 2*time.Millisecond, "query coalescing window (negative disables)")
		maxBatch = flag.Int("max-batch", 64, "max queries per coalesced serve-pool batch")
		inflight = flag.Int("max-inflight", 256, "admission bound on concurrent requests")
		workers  = flag.Int("workers", 0, "serve-pool workers per batch (0 = GOMAXPROCS)")
		hb       = flag.Duration("heartbeat", 200*time.Millisecond, "replication stream heartbeat")
		readyLag = flag.Int64("ready-max-lag", 0, "replica /readyz lag bound in records (0 = default 4096, negative disables)")
		chaos    = flag.Bool("chaos", false, "expose POST /v1/chaos/{poison,compact}: fail-stop or compact the store on demand (drills only)")
	)
	flag.Parse()
	log.SetPrefix("indoorqd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	cfg := server.Config{
		CoalesceWindow: *window,
		MaxBatch:       *maxBatch,
		MaxInFlight:    *inflight,
		Workers:        *workers,
		Heartbeat:      *hb,
		ReadyMaxLag:    *readyLag,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var (
		srv      *server.Server
		shutdown func()
		leaderDB *indoorq.DB // nil on a replica; the chaos drill's target
	)
	if *follow != "" {
		rep := replica.New(wire.NewClient(*follow, nil), replica.Config{})
		// The leader may not be up yet (or mid-restart): keep retrying
		// the bootstrap until it answers or SIGINT/SIGTERM ends the wait.
		// The retry log is rate-limited — a leader that stays down for an
		// hour produces a handful of lines, not thousands.
		var (
			attempts int
			lastLog  time.Time
		)
		for {
			err := rep.Start(ctx)
			if err == nil {
				break
			}
			attempts++
			if attempts == 1 || time.Since(lastLog) >= 10*time.Second {
				log.Printf("replica bootstrap from %s: %v (attempt %d; retrying every 1s, logging at most every 10s)", *follow, err, attempts)
				lastLog = time.Now()
			}
			select {
			case <-ctx.Done():
				log.Printf("shutdown requested during bootstrap (after %d attempts)", attempts)
				return
			case <-time.After(time.Second):
			}
		}
		log.Printf("replica of %s: bootstrapped at lsn %d, %d objects", *follow, rep.AppliedLSN(), rep.NumObjects())
		srv = server.NewReplica(rep, cfg)
		shutdown = rep.Close
	} else {
		db, err := openLeader(*dir, *floors, *objects)
		if err != nil {
			log.Fatal(err)
		}
		mode := "ephemeral"
		if db.Store() != nil {
			mode = "durable at " + *dir
		}
		log.Printf("leader (%s): %d objects, %d subscriptions", mode, db.NumObjects(), db.NumSubscriptions())
		srv = server.NewLeader(db, cfg)
		leaderDB = db
		shutdown = func() {
			if err := db.Close(); err != nil {
				log.Printf("store close: %v", err)
			}
		}
	}

	handler := srv.Handler()
	if *chaos {
		handler = withChaosEndpoints(handler, leaderDB)
		log.Print("chaos endpoints enabled (POST /v1/chaos/poison)")
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(dctx)
	}()
	log.Printf("listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	srv.Close()
	shutdown()
}

// withChaosEndpoints mounts the drill-only fault hooks in front of the
// daemon's handler. POST /v1/chaos/poison fail-stops a durable leader's
// store exactly as a log I/O failure would — the supervised way to
// rehearse degraded read-only mode and the health/alerting around it
// without breaking a real disk. POST /v1/chaos/compact folds the log
// into a fresh checkpoint and prunes every older generation, which is
// how a drill rehearses the "history pruned" refusal on the time-travel
// endpoints.
func withChaosEndpoints(h http.Handler, db *indoorq.DB) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", h)
	durable := func(w http.ResponseWriter, r *http.Request) bool {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return false
		}
		if db == nil || db.Store() == nil {
			http.Error(w, "no durable store to drill against", http.StatusNotFound)
			return false
		}
		return true
	}
	mux.HandleFunc("/v1/chaos/poison", func(w http.ResponseWriter, r *http.Request) {
		if !durable(w, r) {
			return
		}
		db.Store().Poison(nil)
		log.Print("chaos: store poisoned; leader is degraded read-only")
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/chaos/compact", func(w http.ResponseWriter, r *http.Request) {
		if !durable(w, r) {
			return
		}
		if err := db.Compact(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		log.Print("chaos: log compacted; history below the new checkpoint is pruned")
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// openLeader recovers a store directory, seeds a fresh one, or builds an
// ephemeral DB when dir is empty.
func openLeader(dir string, floors, objects int) (*indoorq.DB, error) {
	if dir != "" {
		if hasStore(dir) {
			db, err := indoorq.OpenDir(dir, indoorq.DurabilityOptions{})
			if err != nil {
				return nil, err
			}
			ri := db.RecoveryInfo()
			log.Printf("recovered %s: checkpoint lsn %d, %d records replayed", dir, ri.CheckpointLSN, ri.Replayed)
			return db, nil
		}
		log.Printf("seeding fresh store in %s (%d floors, %d objects)", dir, floors, objects)
	}
	b, err := indoorq.GenerateMall(indoorq.MallSpec{Floors: floors})
	if err != nil {
		return nil, err
	}
	objs := indoorq.GenerateObjects(b, indoorq.ObjectSpec{N: objects, Radius: 6, Instances: 5, Seed: 1})
	db, _, err := indoorq.Open(b, objs, indoorq.Options{})
	if err != nil {
		return nil, err
	}
	if dir != "" {
		if err := db.Persist(dir, indoorq.DurabilityOptions{}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// hasStore reports whether dir already holds a checkpoint (the marker
// OpenDir needs).
func hasStore(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if name := e.Name(); len(name) > 5 && name[len(name)-5:] == ".ckpt" {
			return true
		}
	}
	return false
}
