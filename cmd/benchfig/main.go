// Command benchfig regenerates the series behind every figure of the
// paper's evaluation section (Figures 12–15) and prints them as labelled
// text tables, one per panel.
//
// Usage:
//
//	benchfig [-fig 12a,13b,...,conc,hotpath|all] [-queries N] [-full-precompute]
//
// With -fig all (the default) every panel runs; expect several minutes at
// the paper's default workload sizes. -queries controls how many query
// points each data point averages over (the paper uses 50). EXPERIMENTS.md
// records one full run next to the paper's reported shapes.
//
// The "conc" panel is not from the paper: it sweeps the concurrent serving
// layer's worker pool over 1/2/4/8 workers on the Floors=2, N=1000
// workload, reporting aggregate queries/sec, speedup over one worker, and
// p50/p99 latency. Run it on multi-core hardware to see the scaling; on
// one CPU the series is flat by construction. The "hotpath" panel reports
// the precompiled door-graph tier's size, compile time, single-query
// serial throughput, and the snapshot-republication cost of a topology
// change. The "mvcc" panel sweeps writer churn rate against batch query
// p50/p99 under MVCC snapshot isolation: the writer re-reports object
// positions at a fixed offered rate through coalesced ApplyObjectUpdates
// ticks while query batches run, reporting reader latency, the sustained
// update rate, and snapshot swaps per second. The "monitor" panel sweeps
// the continuous-query subscription engine over 10/100/1k/10k standing
// range queries under localized vs uniform movement churn, reporting
// per-update-batch reconciliation cost next to how many subscriptions the
// inverted unit→query router actually admitted — the routed ≪ registered
// gap is the engine's scaling argument.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	indoorq "repro"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/index"
	"repro/internal/indoor"
	"repro/internal/object"
	"repro/internal/query"
	"repro/internal/serve"
)

var (
	figFlag   = flag.String("fig", "all", "comma-separated figure panels (12a..15d) or 'all'")
	queries   = flag.Int("queries", bench.DefaultQueries, "queries averaged per data point")
	fullPre   = flag.Bool("full-precompute", false, "run the true all-pairs pre-computation for Fig 15(d) instead of extrapolating")
	updateOps = flag.Int("update-ops", 100, "dynamic operations per class for Fig 15(c)")
	citySmoke = flag.Bool("city-smoke", false, "run the city panel at the CI smoke scale instead of CityDefault")
)

func main() {
	flag.Parse()
	want := map[string]bool{}
	for _, f := range strings.Split(*figFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	type panel struct {
		name string
		run  func() error
	}
	panels := []panel{
		{"12a", fig12a}, {"12b", fig12b}, {"12c", fig12c}, {"12d", fig12d},
		{"13a", fig13a}, {"13b", fig13b}, {"13c", fig13c}, {"13d", fig13d},
		{"14a", fig14a}, {"14b", fig14b}, {"14c", fig14c}, {"14d", fig14d},
		{"15a", fig15a}, {"15b", fig15b}, {"15c", fig15c}, {"15d", fig15d},
		{"conc", figConc}, {"hotpath", figHotPath}, {"mvcc", figMVCC},
		{"monitor", figMonitor}, {"city", figCity}, {"history", figHistory},
	}
	ran := 0
	for _, p := range panels {
		if !sel(p.name) {
			continue
		}
		ran++
		// Fresh caches per panel: with several multi-hundred-megabyte
		// fixtures resident, later panels measure heap pressure instead of
		// query cost. Rebuilds are deterministic, so results are
		// unaffected.
		bench.DropFixtures()
		bench.DropCityFixtures()
		runtime.GC()
		if err := p.run(); err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", p.name, err)
			os.Exit(1)
		}
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no figure selected; use -fig all or e.g. -fig 12a,15d")
		os.Exit(2)
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func ms(d time.Duration) string { return fmt.Sprintf("%8.3f", float64(d.Microseconds())/1000) }

// --- Figure 12: iRQ ---

func fig12a() error {
	header("Fig 12(a) — iRQ query time Tq (ms) vs |O|, per query range r")
	fmt.Printf("%-8s %10s %10s %10s\n", "|O|", "r=50", "r=100", "r=150")
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%-8d", n)
		for _, r := range bench.RangePoints {
			pt, err := bench.RunIRQ(f, r, *queries, query.Options{})
			if err != nil {
				return err
			}
			row += " " + ms(pt.MeanTotal)
		}
		fmt.Println(row)
	}
	return nil
}

func fig12b() error {
	header("Fig 12(b) — iRQ phase breakdown (ms) at r=100")
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "|O|", "filter", "subgraph", "prune", "refine")
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		pt, err := bench.RunIRQ(f, bench.DefaultRange, *queries, query.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %s %s %s %s\n", n,
			ms(pt.Filtering), ms(pt.Subgraph), ms(pt.Pruning), ms(pt.Refinement))
	}
	return nil
}

func fig12c() error {
	header("Fig 12(c) — iRQ query time Tq (ms) vs uncertainty region diameter")
	fmt.Printf("%-8s %10s %10s %10s\n", "diam", "r=50", "r=100", "r=150")
	for _, rad := range bench.RadiusPoints {
		cfg := bench.Default()
		cfg.Radius = rad
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%-8g", 2*rad)
		for _, r := range bench.RangePoints {
			pt, err := bench.RunIRQ(f, r, *queries, query.Options{})
			if err != nil {
				return err
			}
			row += " " + ms(pt.MeanTotal)
		}
		fmt.Println(row)
	}
	return nil
}

func fig12d() error {
	header("Fig 12(d) — iRQ query time Tq (ms) vs # partitions (floors)")
	fmt.Printf("%-16s %10s %10s %10s\n", "partitions", "r=50", "r=100", "r=150")
	for _, fl := range bench.FloorPoints {
		cfg := bench.Default()
		cfg.Floors = fl
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%-16s", fmt.Sprintf("%d (%d fl)", f.B.NumPartitions(), fl))
		for _, r := range bench.RangePoints {
			pt, err := bench.RunIRQ(f, r, *queries, query.Options{})
			if err != nil {
				return err
			}
			row += " " + ms(pt.MeanTotal)
		}
		fmt.Println(row)
	}
	return nil
}

// --- Figure 13: ikNNQ ---

func fig13a() error {
	header("Fig 13(a) — ikNNQ query time Tq (ms) vs |O|, per k")
	fmt.Printf("%-8s %10s %10s %10s\n", "|O|", "k=50", "k=100", "k=150")
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%-8d", n)
		for _, k := range bench.KPoints {
			pt, err := bench.RunKNN(f, k, *queries, query.Options{})
			if err != nil {
				return err
			}
			row += " " + ms(pt.MeanTotal)
		}
		fmt.Println(row)
	}
	return nil
}

func fig13b() error {
	header("Fig 13(b) — ikNNQ phase breakdown (ms) at k=100")
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "|O|", "filter", "subgraph", "prune", "refine")
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		pt, err := bench.RunKNN(f, bench.DefaultK, *queries, query.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %s %s %s %s\n", n,
			ms(pt.Filtering), ms(pt.Subgraph), ms(pt.Pruning), ms(pt.Refinement))
	}
	return nil
}

func fig13c() error {
	header("Fig 13(c) — ikNNQ query time Tq (ms) vs uncertainty region diameter")
	fmt.Printf("%-8s %10s %10s %10s\n", "diam", "k=50", "k=100", "k=150")
	for _, rad := range bench.RadiusPoints {
		cfg := bench.Default()
		cfg.Radius = rad
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%-8g", 2*rad)
		for _, k := range bench.KPoints {
			pt, err := bench.RunKNN(f, k, *queries, query.Options{})
			if err != nil {
				return err
			}
			row += " " + ms(pt.MeanTotal)
		}
		fmt.Println(row)
	}
	return nil
}

func fig13d() error {
	header("Fig 13(d) — ikNNQ query time Tq (ms) vs # partitions (floors)")
	fmt.Printf("%-16s %10s %10s %10s\n", "partitions", "k=50", "k=100", "k=150")
	for _, fl := range bench.FloorPoints {
		cfg := bench.Default()
		cfg.Floors = fl
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%-16s", fmt.Sprintf("%d (%d fl)", f.B.NumPartitions(), fl))
		for _, k := range bench.KPoints {
			pt, err := bench.RunKNN(f, k, *queries, query.Options{})
			if err != nil {
				return err
			}
			row += " " + ms(pt.MeanTotal)
		}
		fmt.Println(row)
	}
	return nil
}

// --- Figure 14: bound effectiveness ---

func fig14a() error {
	header("Fig 14(a) — iRQ filtering & pruning ratios (%) at r=100")
	fmt.Printf("%-8s %10s %10s\n", "|O|", "filter", "prune")
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		pt, err := bench.RunIRQ(f, bench.DefaultRange, *queries, query.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %10.2f %10.2f\n", n, 100*pt.FilterRatio, 100*pt.PruneRatio)
	}
	return nil
}

func fig14b() error {
	header("Fig 14(b) — iRQ time (ms) with vs without pruning phase, r=100")
	fmt.Printf("%-8s %12s %15s\n", "|O|", "withPruning", "withoutPruning")
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		with, err := bench.RunIRQ(f, bench.DefaultRange, *queries, query.Options{})
		if err != nil {
			return err
		}
		without, err := bench.RunIRQ(f, bench.DefaultRange, *queries, query.Options{DisablePruning: true})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %12s %15s\n", n, ms(with.MeanTotal), ms(without.MeanTotal))
	}
	return nil
}

func fig14c() error {
	header("Fig 14(c) — ikNNQ filtering & pruning ratios (%) at k=100")
	fmt.Printf("%-8s %10s %10s\n", "|O|", "filter", "prune")
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		pt, err := bench.RunKNN(f, bench.DefaultK, *queries, query.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %10.2f %10.2f\n", n, 100*pt.FilterRatio, 100*pt.PruneRatio)
	}
	return nil
}

func fig14d() error {
	header("Fig 14(d) — ikNNQ time (ms) with vs without pruning phase, k=100")
	fmt.Printf("%-8s %12s %15s\n", "|O|", "withPruning", "withoutPruning")
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		with, err := bench.RunKNN(f, bench.DefaultK, *queries, query.Options{})
		if err != nil {
			return err
		}
		without, err := bench.RunKNN(f, bench.DefaultK, *queries, query.Options{DisablePruning: true})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %12s %15s\n", n, ms(with.MeanTotal), ms(without.MeanTotal))
	}
	return nil
}

// --- Figure 15: composite index ---

func fig15a() error {
	header("Fig 15(a) — index units retrieved with vs without skeleton tier")
	fmt.Printf("%-8s %14s %17s\n", "range", "withSkeleton", "withoutSkeleton")
	cfg := bench.Default()
	f, err := bench.Fixture(cfg)
	if err != nil {
		return err
	}
	for _, r := range bench.RangePoints {
		with, err := bench.RunIRQ(f, r, *queries, query.Options{})
		if err != nil {
			return err
		}
		without, err := bench.RunIRQ(f, r, *queries, query.Options{DisableSkeleton: true})
		if err != nil {
			return err
		}
		fmt.Printf("%-8g %14.0f %17.0f\n", r, with.Units, without.Units)
	}
	return nil
}

func fig15b() error {
	header("Fig 15(b) — index construction time per layer (ms) vs partitions")
	fmt.Printf("%-16s %10s %10s %10s %10s\n", "partitions", "tree", "topo", "object", "skeleton")
	for _, fl := range bench.FloorPoints {
		b, err := gen.Mall(gen.MallSpec{Floors: fl})
		if err != nil {
			return err
		}
		objs := gen.Objects(b, gen.ObjectSpec{
			N: bench.DefaultObjects, Radius: bench.DefaultRadius,
			Instances: bench.DefaultInstances, Seed: 1,
		})
		_, stats, err := index.Build(b, objs, index.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %s %s %s %s\n",
			fmt.Sprintf("%d (%d fl)", b.NumPartitions(), fl),
			ms(stats.TreeTier), ms(stats.TopoLayer), ms(stats.ObjectLayer), ms(stats.SkeletonTier))
	}
	return nil
}

func fig15c() error {
	header(fmt.Sprintf("Fig 15(c) — dynamic operation cost (ms per op, %d ops)", *updateOps))
	cfg := bench.Default()
	f, err := bench.Fixture(cfg)
	if err != nil {
		return err
	}
	n := *updateOps

	qs := gen.QueryPoints(f.B, n, 99)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := f.Idx.InsertObject(object.PointObject(object.ID(3_000_000+i), qs[i])); err != nil {
			return err
		}
	}
	insObj := time.Since(start)
	start = time.Now()
	for i := 0; i < n; i++ {
		if err := f.Idx.DeleteObject(object.ID(3_000_000 + i)); err != nil {
			return err
		}
	}
	delObj := time.Since(start)

	var room indoor.PartitionID
	for _, p := range f.B.Partitions() {
		if p.Kind == indoor.Room {
			room = p.ID
			break
		}
	}
	rect := f.B.Partition(room).Bounds()
	if err := f.Idx.RemovePartition(room); err != nil {
		return err
	}
	var insPart, delPart time.Duration
	for i := 0; i < n; i++ {
		start = time.Now()
		p := f.B.AddRoom(0, rect)
		if err := f.Idx.AddPartition(p.ID); err != nil {
			return err
		}
		insPart += time.Since(start)
		start = time.Now()
		if err := f.Idx.RemovePartition(p.ID); err != nil {
			return err
		}
		delPart += time.Since(start)
	}
	// Restore the room for later panels.
	p := f.B.AddRoom(0, rect)
	if err := f.Idx.AddPartition(p.ID); err != nil {
		return err
	}

	fmt.Printf("%-18s %10s\n", "operation", "ms/op")
	fmt.Printf("%-18s %s\n", "insertObject", ms(insObj/time.Duration(n)))
	fmt.Printf("%-18s %s\n", "deleteObject", ms(delObj/time.Duration(n)))
	fmt.Printf("%-18s %s\n", "insertPartition", ms(insPart/time.Duration(n)))
	fmt.Printf("%-18s %s\n", "deletePartition", ms(delPart/time.Duration(n)))
	return nil
}

func fig15d() error {
	header("Fig 15(d) — door-to-door pre-computation time vs partitions")
	fmt.Printf("%-16s %8s %14s %16s\n", "partitions", "doors", "per-source", "all-pairs")
	for _, fl := range bench.FloorPoints {
		cfg := bench.Default()
		cfg.Floors = fl
		f, err := bench.Fixture(cfg)
		if err != nil {
			return err
		}
		if *fullPre {
			pre := baseline.Precompute(f.Idx)
			fmt.Printf("%-16s %8d %14s %16s\n",
				fmt.Sprintf("%d (%d fl)", f.B.NumPartitions(), fl),
				pre.NDoors, "-", pre.Elapsed.Round(time.Millisecond))
			continue
		}
		per, total, doors := baseline.EstimatePrecomputeTime(f.Idx, 32)
		fmt.Printf("%-16s %8d %14s %16s (extrapolated)\n",
			fmt.Sprintf("%d (%d fl)", f.B.NumPartitions(), fl),
			doors, per.Round(time.Microsecond), total.Round(time.Millisecond))
	}
	return nil
}

// --- Concurrent serving (not in the paper) ---

func figConc() error {
	header(fmt.Sprintf("Concurrent serving — batch throughput vs workers (GOMAXPROCS=%d)",
		runtime.GOMAXPROCS(0)))
	f, err := bench.Fixture(bench.ServeWorkload())
	if err != nil {
		return err
	}
	const batch = 400
	for _, kind := range []string{"iRQ", "ikNN"} {
		fmt.Printf("%-6s %8s %12s %9s %10s %10s\n",
			kind, "workers", "queries/sec", "speedup", "p50 (ms)", "p99 (ms)")
		base := 0.0
		for _, w := range bench.ConcurrencyWorkers {
			var m serve.Metrics
			if kind == "iRQ" {
				m, err = bench.RunBatchIRQ(f, bench.DefaultRange, batch, w, query.Options{})
			} else {
				m, err = bench.RunBatchKNN(f, 10, batch, w, query.Options{})
			}
			if err != nil {
				return err
			}
			if base == 0 {
				base = m.Throughput
			}
			fmt.Printf("%-6s %8d %12.0f %8.2fx %s %s\n",
				"", w, m.Throughput, m.Throughput/base, ms(m.P50), ms(m.P99))
		}
	}
	return nil
}

// figHotPath is the door-graph-tier panel (not from the paper): it reports
// the compiled graph's size and compile time on the default workload, the
// single-query serial throughput the precompiled tier sustains, and the
// cost a topology change adds to the next query (the lazy recompile).
func figHotPath() error {
	header("Door-graph tier — compile cost and single-query hot path (default workload)")
	f, err := bench.Fixture(bench.Default())
	if err != nil {
		return err
	}
	idx := f.Idx
	idx.RLock()
	dg := idx.DoorGraph()
	idx.RUnlock()
	fmt.Printf("doors %d, unit slots %d, directed edges %d, compile %s ms\n",
		dg.NumDoors(), dg.NumUnits(), dg.Graph().NumEdges(), ms(f.BuildStats.DoorGraph))

	// Serial single-query throughput over the pool.
	p := f.Processor(query.Options{})
	for _, kind := range []string{"iRQ", "ikNN"} {
		start := time.Now()
		n := 0
		for i := 0; i < *queries; i++ {
			q := f.Queries[i%len(f.Queries)]
			var err error
			if kind == "iRQ" {
				_, _, err = p.RangeQuery(q, bench.DefaultRange)
			} else {
				_, _, err = p.KNNQuery(q, bench.DefaultK)
			}
			if err != nil {
				return err
			}
			n++
		}
		el := time.Since(start)
		fmt.Printf("%-5s %4d queries in %s ms (%8.0f queries/sec serial)\n",
			kind, n, ms(el), float64(n)/el.Seconds())
	}

	// Topology-republication latency: under MVCC a door toggle clones the
	// topological layer, rebakes enterability and recompiles the doors
	// graph into a new snapshot before returning — queries never pay for
	// it, the mutator does. Measure the whole mutation.
	var door indoor.DoorID = -1
	for _, d := range f.B.Doors() {
		door = d.ID
		break
	}
	if door >= 0 {
		start := time.Now()
		if err := idx.SetDoorClosed(door, false); err != nil {
			return err
		}
		fmt.Printf("topology mutation incl. graph recompile + snapshot publish: %s ms\n", ms(time.Since(start)))
	}
	return nil
}

// --- Continuous-query subscription engine (not in the paper) ---

// figMonitor sweeps standing-query count × churn locality through the
// subscription engine (the shared bench.MonitorWorkload). Each data point
// applies 64 coalesced 16-move batches and reports the mean per-batch
// reconciliation cost alongside the router's admission counters: affected
// subscriptions and routed (subscription, object) re-evaluations per
// batch. The pre-router monitor paid one evaluation per standing query per
// update — 16 × registered per batch; routed ≪ that product is the win
// this panel records.
func figMonitor() error {
	header("Continuous queries — reconciliation cost vs standing-query count")
	fmt.Printf("%8s %-10s %14s %14s %16s %18s\n",
		"subs", "churn", "ms/batch", "routed/batch", "affected/batch", "old-cost/batch")
	for _, nq := range []int{10, 100, 1000, 10000} {
		for _, localized := range []bool{true, false} {
			w, err := bench.NewMonitorWorkload(nq, localized)
			if err != nil {
				return err
			}
			before := w.Engine.Stats()
			start := time.Now()
			for _, ups := range w.Batches {
				if _, err := w.Engine.ApplyObjectUpdates(ups); err != nil {
					return err
				}
			}
			elapsed := time.Since(start)
			st := w.Engine.Stats()
			batches := time.Duration(len(w.Batches))
			churn := "uniform"
			if localized {
				churn = "localized"
			}
			fmt.Printf("%8d %-10s %s %14.1f %16.1f %18d\n",
				nq, churn, ms(elapsed/batches),
				float64(st.RoutedPairs-before.RoutedPairs)/float64(len(w.Batches)),
				float64(st.AffectedSubs-before.AffectedSubs)/float64(len(w.Batches)),
				bench.MonitorBatchSize*nq)
		}
	}
	return nil
}

// --- MVCC read/write interference (not in the paper) ---

// figMVCC sweeps offered writer churn against batch query latency: the
// read/write-interference profile of the snapshot-isolated serving layer.
// Offered churn arrives as coalesced movement ticks (ApplyObjectUpdates,
// one snapshot swap per tick); batches of range queries run throughout.
// Reported per churn rate: batch p50/p99, batch throughput, the SUSTAINED
// update rate (how much of the offered churn the writer absorbed — a
// global lock sheds load here, snapshot isolation should not), and
// snapshot swaps per second.
func figMVCC() error {
	header(fmt.Sprintf("MVCC — batch query latency vs writer churn (GOMAXPROCS=%d)",
		runtime.GOMAXPROCS(0)))
	f, err := bench.Fixture(bench.ServeWorkload())
	if err != nil {
		return err
	}
	const (
		tickEvery = 10 * time.Millisecond
		batch     = 200
		rounds    = 8
	)
	fmt.Printf("%12s %12s %12s %12s %10s %10s\n",
		"offered/s", "sustained/s", "swaps/sec", "queries/sec", "p50 (ms)", "p99 (ms)")
	for _, perTick := range []int{0, 10, 50, 200} {
		offered := perTick * int(time.Second/tickEvery)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var applied atomic.Int64
		swapsBefore := f.Idx.SnapshotSwaps()
		if perTick > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				next := time.Now()
				i := 0
				ups := make([]index.ObjectUpdate, perTick)
				for {
					select {
					case <-stop:
						return
					default:
					}
					next = next.Add(tickEvery)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					for j := range ups {
						ups[j] = index.ObjectUpdate{Op: index.UpdateMove, Object: f.Objs[(i+j)%len(f.Objs)]}
					}
					i += perTick
					if err := f.Idx.ApplyObjectUpdates(ups); err != nil {
						return
					}
					applied.Add(int64(perTick))
				}
			}()
		}
		var agg serve.Metrics
		start := time.Now()
		for r := 0; r < rounds; r++ {
			m, err := bench.RunBatchIRQ(f, bench.DefaultRange, batch, 4, query.Options{})
			if err != nil {
				close(stop)
				wg.Wait()
				return err
			}
			if r == 0 || m.P99 > agg.P99 {
				agg.P99 = m.P99
			}
			agg.P50 += m.P50
			agg.Throughput += m.Throughput
		}
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()
		agg.P50 /= time.Duration(rounds)
		agg.Throughput /= rounds
		sustained := float64(applied.Load()) / elapsed.Seconds()
		swapsPerSec := float64(f.Idx.SnapshotSwaps()-swapsBefore) / elapsed.Seconds()
		fmt.Printf("%12d %12.0f %12.1f %12.0f %s %s\n",
			offered, sustained, swapsPerSec, agg.Throughput, ms(agg.P50), ms(agg.P99))
	}
	return nil
}

// --- Time travel (not in the paper) ---

// figHistory measures AsOf reconstruction cost as a function of replay
// distance — the records folded forward from the nearest checkpoint —
// in three regimes: cold (a fresh provider rebuilding from the
// checkpoint), a nearest-ancestor advance of one record on the now-warm
// materialized state, and an exact-LSN view-cache hit. The gap between
// the cold column and the other two is what the provider's LRU buys a
// replay tool walking forward through history.
func figHistory() error {
	header("Time travel — AsOf latency vs replay distance (cold vs cached)")
	b, err := gen.Mall(gen.MallSpec{Floors: 2})
	if err != nil {
		return err
	}
	objs := gen.Objects(b, gen.ObjectSpec{N: 2000, Radius: 5, Instances: 4, Seed: 7})
	db, _, err := indoorq.Open(b, objs, indoorq.Options{})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "benchfig-history-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := db.Persist(dir, indoorq.DurabilityOptions{CompactBytes: -1}); err != nil {
		return err
	}
	defer db.Close()

	const total = 4096
	for i := 0; i < total; i++ {
		o := db.Object(indoorq.ObjectID(i % 2000))
		p := o.Center
		if i%2 == 0 {
			p.Pt.X += 0.2
		} else {
			p.Pt.X -= 0.2
		}
		if err := db.MoveObject(object.PointObject(o.ID, p)); err != nil {
			return err
		}
	}
	if err := db.Sync(); err != nil {
		return err
	}

	fmt.Printf("%10s %12s %14s %14s %14s\n",
		"distance", "cold (ms)", "records/sec", "advance+1 (ms)", "view hit (ms)")
	for _, d := range []int{1, 16, 256, 1024, 4096} {
		// Cold: a fresh provider over the same store — nothing cached.
		p := history.NewProvider(history.StoreSource{St: db.Store()}, history.Options{})
		start := time.Now()
		if _, err := p.AsOf(uint64(d)); err != nil {
			return err
		}
		cold := time.Since(start)
		adv := "             -"
		if d+1 <= total {
			start = time.Now()
			if _, err := p.AsOf(uint64(d + 1)); err != nil {
				return err
			}
			adv = ms(time.Since(start))
		}
		start = time.Now()
		if _, err := p.AsOf(uint64(d)); err != nil {
			return err
		}
		hit := time.Since(start)
		fmt.Printf("%10d %s %14.0f %s %s\n",
			d, ms(cold), float64(d)/cold.Seconds(), adv, ms(hit))
	}
	return nil
}

// --- City scale: mixed panel + reconciliation shard sweep ---

// figCity is the city-scale workload panel: scale statistics, the mixed
// read/write/subscription p99 latency budget, and a reconciliation
// shard-width sweep on the same steady-state churn. The README's
// performance section publishes this table at CityDefault scale;
// -city-smoke selects the CI-sized city instead.
func figCity() error {
	cfg := bench.CityDefault()
	subs := 10000
	if *citySmoke {
		cfg = bench.CitySmoke()
		subs = 1000
	}
	header(fmt.Sprintf("City scale — %s, %d subscriptions", cfg, subs))
	w, err := bench.NewCityChurn(cfg, subs)
	if err != nil {
		return err
	}
	bld := w.Idx.Building()
	fmt.Printf("buildings %d  partitions %d  doors %d  objects %d  subs %d\n",
		len(w.Layout.Buildings), len(bld.Partitions()), len(bld.Doors()), cfg.Objects, subs)

	// Mixed panel first: its batches fill the engine's latency window
	// cleanly before the sweep reuses the engine.
	rep, err := bench.RunCityMixed(cfg, subs, 256, query.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\n%-28s %10s %10s\n", "latency budget (ms)", "p50", "p99")
	fmt.Printf("%-28s %s %s\n", "iRQ (r=50)", ms(rep.RangeP50), ms(rep.RangeP99))
	fmt.Printf("%-28s %s %s\n", "ikNN (k=10)", ms(rep.KNNP50), ms(rep.KNNP99))
	fmt.Printf("%-28s %s %s   (mean %s)\n", "reconcile (32-move batch)",
		ms(rep.ReconcileP50), ms(rep.ReconcileP99), ms(rep.ReconcileMean))
	fmt.Printf("%-28s %10.0f moves/s\n", "write throughput", rep.MovesPerSec)

	fmt.Printf("\n%8s %14s %14s\n", "shards", "ms/batch", "batches/s")
	for _, shards := range []int{1, 2, 4, 8} {
		w.Engine.SetShards(shards)
		start := time.Now()
		for _, ups := range w.Batches {
			if _, err := w.Engine.ApplyObjectUpdates(ups); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		per := elapsed / time.Duration(len(w.Batches))
		fmt.Printf("%8d %s %14.1f\n", shards, ms(per), float64(len(w.Batches))/elapsed.Seconds())
	}
	w.Engine.SetShards(0)
	return nil
}
