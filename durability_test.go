package indoorq

// Facade-level durability tests: persist/recover round trips, durable
// subscriptions, compaction, the standalone checkpoint export, and the
// paced-churn WAL-overhead smoke (env-gated; CI runs it as its own
// step). The byte-granular crash-injection property suite lives in
// crashrecovery_test.go.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/object"
)

// saveBytes fingerprints a DB's building+object state via the serde
// document (ids and allocators included).
func saveBytes(t *testing.T, db *DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testWorkload(t *testing.T) (*Building, []*Object, []Position) {
	t.Helper()
	b, err := GenerateMall(MallSpec{Floors: 1})
	if err != nil {
		t.Fatal(err)
	}
	objs := GenerateObjects(b, ObjectSpec{N: 60, Radius: 6, Instances: 5, Seed: 21})
	return b, objs, GenerateQueryPoints(b, 3, 22)
}

func TestDurableRoundTrip(t *testing.T) {
	b, objs, queries := testWorkload(t)
	db, _, err := Open(b, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := db.Persist(dir, DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}

	// Subscriptions before and after some churn.
	subRange, _, err := db.Subscribe(SubscriptionSpec{Q: queries[0], R: 100})
	if err != nil {
		t.Fatal(err)
	}
	subKNN, _, err := db.Subscribe(SubscriptionSpec{Q: queries[1], K: 4})
	if err != nil {
		t.Fatal(err)
	}
	subGone, _, err := db.Subscribe(SubscriptionSpec{Q: queries[2], R: 50})
	if err != nil {
		t.Fatal(err)
	}

	// Churn: moves, insert, delete, a door toggle, a split+merge.
	var ups []ObjectUpdate
	for i := 0; i < 20; i++ {
		o := db.Object(ObjectID(i))
		p := o.Center
		p.Pt.X += 3
		ups = append(ups, ObjectUpdate{Op: UpdateMove, Object: object.PointObject(o.ID, p)})
	}
	if err := db.ApplyObjectUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertObject(object.PointObject(500, queries[0])); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteObject(ObjectID(25)); err != nil {
		t.Fatal(err)
	}
	if err := db.SetDoorClosed(b.Doors()[3].ID, true); err != nil {
		t.Fatal(err)
	}
	var splitable PartitionID = -1
	for _, p := range b.Partitions() {
		if r := p.Bounds(); p.Shape.IsConvex() && r.MaxX-r.MinX > 8 {
			splitable = p.ID
			break
		}
	}
	if splitable >= 0 {
		r := b.Partition(splitable).Bounds()
		pa, pb, err := db.SplitPartition(splitable, true, (r.MinX+r.MaxX)/2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.MergePartitions(pa, pb); err != nil {
			t.Fatal(err)
		}
	}
	if !db.Unsubscribe(subGone) {
		t.Fatal("unsubscribe failed")
	}

	want := saveBytes(t, db)
	wantRange := db.SubscriptionResults(subRange)
	wantKNN := db.SubscriptionResults(subKNN)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := saveBytes(t, db2); !bytes.Equal(want, got) {
		t.Fatal("recovered serde state differs")
	}
	if err := db2.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, "durable", db, db2, queries)
	if db2.NumSubscriptions() != 2 {
		t.Fatalf("recovered %d subscriptions, want 2", db2.NumSubscriptions())
	}
	if got := db2.SubscriptionResults(subRange); !reflect.DeepEqual(got, wantRange) {
		t.Fatalf("range subscription drifted: %v vs %v", got, wantRange)
	}
	if got := db2.SubscriptionResults(subKNN); !reflect.DeepEqual(got, wantKNN) {
		t.Fatalf("kNN subscription drifted: %v vs %v", got, wantKNN)
	}
	if db2.SubscriptionResults(subGone) != nil {
		t.Fatal("unsubscribed handle resurrected")
	}
	if db2.RecoveryInfo().Replayed == 0 {
		t.Fatal("recovery replayed nothing")
	}

	// The recovered DB keeps working durably: new handles must not
	// collide with recovered ones.
	id3, _, err := db2.Subscribe(SubscriptionSpec{Q: queries[2], R: 60})
	if err != nil {
		t.Fatal(err)
	}
	if id3 == subRange || id3 == subKNN {
		t.Fatalf("handle %d collides with recovered handles", id3)
	}
	if err := db2.MoveObject(object.PointObject(0, queries[1])); err != nil {
		t.Fatal(err)
	}
}

func TestAutoCompaction(t *testing.T) {
	b, objs, _ := testWorkload(t)
	db, _, err := Open(b, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// A tiny threshold forces compaction within a few batches.
	if err := db.Persist(dir, DurabilityOptions{CompactBytes: 8 << 10}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		var ups []ObjectUpdate
		for j := 0; j < 20; j++ {
			o := db.Object(ObjectID(j))
			p := o.Center
			p.Pt.Y += 0.1
			ups = append(ups, ObjectUpdate{Op: UpdateMove, Object: object.PointObject(o.ID, p)})
		}
		if err := db.ApplyObjectUpdates(ups); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		compacted := true
		for _, e := range ents {
			if e.Name() == "checkpoint-00000000000000000000.ckpt" {
				compacted = false
			}
		}
		if compacted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no automatic compaction within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	want := saveBytes(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := saveBytes(t, db2); !bytes.Equal(want, got) {
		t.Fatal("state after auto-compaction differs")
	}
}

func TestStandaloneCheckpoint(t *testing.T) {
	b, objs, queries := testWorkload(t)
	db, _, err := Open(b, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Subscribe(SubscriptionSpec{Q: queries[0], K: 3}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "export.ckpt")
	if err := db.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, db), saveBytes(t, db2)) {
		t.Fatal("checkpoint export/import changed state")
	}
	assertSameAnswers(t, "durable", db, db2, queries)
	if db2.NumSubscriptions() != 1 {
		t.Fatalf("recovered %d subscriptions, want 1", db2.NumSubscriptions())
	}
	// The loaded DB is ephemeral but can be persisted afresh.
	dir := t.TempDir()
	if err := db2.Persist(dir, DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db2.MoveObject(object.PointObject(0, queries[2])); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestClosedDBFailsStop(t *testing.T) {
	b, objs, _ := testWorkload(t)
	db, _, err := Open(b, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Persist(t.TempDir(), DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := db.MoveObject(object.PointObject(0, Pos(1, 1, 0))); err == nil {
		t.Fatal("mutation accepted after Close")
	}
	// Queries still work.
	if _, _, err := db.RangeQuery(Pos(100, 50, 0), 80); err != nil {
		t.Fatal(err)
	}
}

// TestWALChurnOverheadSmoke checks the paced-churn overhead claim: with
// the WAL on (grouped commit), a writer offered a fixed churn rate must
// sustain at least 85% of the WAL-off throughput. It runs only with
// WAL_SMOKE=1 (CI gives it a dedicated step; locally it takes ~2s and
// depends on the disk).
func TestWALChurnOverheadSmoke(t *testing.T) {
	if os.Getenv("WAL_SMOKE") == "" {
		t.Skip("set WAL_SMOKE=1 to run the WAL overhead smoke")
	}
	const (
		perTick   = 100
		tickEvery = 10 * time.Millisecond
		duration  = 1 * time.Second
	)
	run := func(withWAL bool) float64 {
		b, objs, _ := testWorkload(t)
		db, _, err := Open(b, objs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if withWAL {
			if err := db.Persist(t.TempDir(), DurabilityOptions{}); err != nil {
				t.Fatal(err)
			}
			defer db.Close()
		}
		var applied atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			next := time.Now()
			i := 0
			ups := make([]index.ObjectUpdate, perTick)
			for {
				select {
				case <-stop:
					return
				default:
				}
				next = next.Add(tickEvery)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				for j := range ups {
					o := db.Object(ObjectID((i + j) % len(objs)))
					ups[j] = index.ObjectUpdate{Op: index.UpdateMove, Object: o}
				}
				i += perTick
				if err := db.ApplyObjectUpdates(ups); err != nil {
					t.Error(err)
					return
				}
				applied.Add(perTick)
			}
		}()
		start := time.Now()
		time.Sleep(duration)
		close(stop)
		wg.Wait()
		return float64(applied.Load()) / time.Since(start).Seconds()
	}
	off := run(false)
	on := run(true)
	ratio := on / off
	t.Logf("paced churn sustained: WAL off %.0f moves/s, WAL on %.0f moves/s (ratio %.3f)", off, on, ratio)
	if ratio < 0.85 {
		t.Fatalf("WAL overhead too high: sustained ratio %.3f < 0.85 ("+strconv.Itoa(perTick)+" moves/tick)", ratio)
	}
}
