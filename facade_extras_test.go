package indoorq

import (
	"bytes"
	"testing"
)

func TestFacadeSaveLoadRoundTrip(t *testing.T) {
	db := openSmall(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b2, objs2, err := LoadBuilding(&buf)
	if err != nil {
		t.Fatal(err)
	}
	db2, _, err := Open(b2, objs2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumObjects() != db.NumObjects() {
		t.Fatalf("objects %d -> %d", db.NumObjects(), db2.NumObjects())
	}
	q := GenerateQueryPoints(db.Building(), 1, 9)[0]
	r1, _, err := db.RangeQuery(q, 100)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := db2.RangeQuery(q, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("round trip changed iRQ results: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].ID != r2[i].ID {
			t.Fatal("round trip changed result membership")
		}
	}
}

func TestFacadeMonitor(t *testing.T) {
	db := openSmall(t)
	mon := db.NewMonitor()
	q := GenerateQueryPoints(db.Building(), 1, 10)[0]
	id, initial, err := mon.Register(q, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Standing result must equal the one-shot query.
	fresh, _, err := db.RangeQuery(q, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(initial) != len(fresh) {
		t.Fatalf("standing %d vs fresh %d", len(initial), len(fresh))
	}
	// Drop a new object onto the query point through the monitor.
	o := &Object{ID: 777777, Instances: []Instance{{Pos: q, P: 1}}}
	events, err := mon.ObjectInserted(o)
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, e := range events {
		if e.Query == id && e.Object == 777777 && e.Entered {
			seen = true
		}
	}
	if !seen {
		t.Fatal("monitor missed the inserted object")
	}
}

func TestFacadeEstimator(t *testing.T) {
	db := openSmall(t)
	est := db.NewEstimator()
	q := GenerateQueryPoints(db.Building(), 1, 11)[0]
	small := est.EstimateRange(q, 20)
	large := est.EstimateRange(q, 200)
	if small > large {
		t.Errorf("estimate not monotone: %g > %g", small, large)
	}
	if large <= 0 {
		t.Error("large-radius estimate should be positive on a populated mall")
	}
}
