// Package indoorq is a Go implementation of "Efficient Distance-Aware Query
// Evaluation on Indoor Moving Objects" (Xie, Lu, Pedersen — ICDE 2013): a
// composite index for dynamic indoor spaces and uncertain moving objects
// that answers indoor range queries and k-nearest-neighbour queries by
// expected indoor walking distance, without pre-computing door-to-door
// distances.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/indoor:   partitions, doors, buildings, Algorithm 3
//   - internal/object:   instance-based uncertain objects
//   - internal/index:    the composite index (tree, topological, object and
//     skeleton layers) with dynamic maintenance
//   - internal/distance: expected indoor distances and all pruning bounds
//   - internal/query:    the iRQ and ikNNQ processors
//   - internal/gen:      the paper's synthetic mall workload
//
// Quick start:
//
//	b, _ := indoorq.GenerateMall(indoorq.MallSpec{Floors: 2})
//	objs := indoorq.GenerateObjects(b, indoorq.ObjectSpec{N: 1000, Radius: 10})
//	db, _, _ := indoorq.Open(b, objs, indoorq.Options{})
//	results, _, _ := db.RangeQuery(indoorq.Pos(300, 60, 0), 100)
//
// # Concurrency
//
// A DB is safe for concurrent use and serves reads under MVCC snapshot
// isolation. The index state lives in immutable snapshots published
// through an atomic pointer: every query pins the current snapshot with
// one wait-free load and evaluates against it with no locking, so
// *writers never block readers and readers never block writers*. Each of
// RangeQuery, KNNQuery, LocatePartition, Object and NumObjects observes
// one consistent point-in-time state; a batch (BatchRangeQuery,
// BatchKNNQuery) pins ONE snapshot for the whole batch, so all its
// queries agree with each other. Mutators — InsertObject, DeleteObject,
// UpdateObject, MoveObject, ApplyObjectUpdates, SetDoorClosed,
// AddPartition, RemovePartition, AttachDoor, DetachDoor, SplitPartition
// and MergePartitions — serialise only against each other: they build the
// successor snapshot copy-on-write (object updates share the whole
// topology; topology updates share the object store's untouched storage)
// and publish it atomically, so no reader ever observes a half-applied
// mutation. High-rate movement should go through ApplyObjectUpdates,
// which coalesces a batch of updates into one snapshot swap.
//
// Save and RenderSVG briefly exclude mutators (they read the building's
// partition/door structure directly).
//
// Continuous queries: Subscribe installs standing range/kNN queries whose
// results the DB maintains incrementally. Once any subscription is
// active, every DB mutator also runs one reconciliation pass over the
// affected standing queries (resolved through an inverted unit→query
// index, so the pass scales with update locality, not with the number of
// subscriptions) before returning; the resulting enter/leave/update
// events accumulate in a drainable log (Events). Subscription update
// operations serialise internally, so event streams match a serial
// replay of the same updates and replaying a subscription's events over
// its initial result set reproduces its current result set. The legacy
// Monitor wraps the same engine with the original per-object API. While
// serving concurrently, mutate the building only through the DB (or the
// Monitor), never through *Building directly.
//
// For throughput, fan query batches across CPUs with the serving layer:
//
//	reqs := make([]indoorq.RangeRequest, len(points))
//	for i, q := range points {
//		reqs[i] = indoorq.RangeRequest{Q: q, R: 100}
//	}
//	resps, m := db.BatchRangeQuery(reqs, indoorq.ServeConfig{}) // Workers: GOMAXPROCS
//	fmt.Printf("%.0f queries/sec, p99 %v\n", m.Throughput, m.P99)
//
// # Durability
//
// A DB built with Open is ephemeral. Persist attaches a durable store (a
// checkpoint plus a write-ahead log of every mutation, appended inside
// the writer mutex before each snapshot publishes), and OpenDir recovers
// one: newest valid checkpoint, WAL replay with torn-tail truncation,
// subscriptions re-registered. See durability.go and ARCHITECTURE.md for
// the full contract (fsync policies, group commit, compaction,
// fail-stop semantics):
//
//	db.Persist("data/", indoorq.DurabilityOptions{})
//	...
//	db.Close()
//	db, _ = indoorq.OpenDir("data/", indoorq.DurabilityOptions{})
package indoorq

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/history"
	"repro/internal/index"
	"repro/internal/indoor"
	"repro/internal/object"
	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/serde"
	"repro/internal/serve"
	"repro/internal/store"
)

// Re-exported model types. The aliases keep one import path for users while
// the implementation stays in focused internal packages.
type (
	// Building is a dynamic multi-floor indoor space.
	Building = indoor.Building
	// Partition is a room, hallway or staircase.
	Partition = indoor.Partition
	// PartitionID identifies a partition.
	PartitionID = indoor.PartitionID
	// Door connects two partitions; it may be one-way or closed.
	Door = indoor.Door
	// DoorID identifies a door.
	DoorID = indoor.DoorID
	// Position is a planar point on a floor.
	Position = indoor.Position
	// Object is an uncertain indoor moving object.
	Object = object.Object
	// ObjectID identifies an object.
	ObjectID = object.ID
	// Instance is one existential sample of an object.
	Instance = object.Instance
	// Point is a planar point in metres.
	Point = geom.Point
	// Rect is a planar axis-aligned rectangle.
	Rect = geom.Rect
	// Polygon is a rectilinear simple polygon (partition footprint).
	Polygon = geom.Polygon
	// Options configures index construction.
	Options = index.Options
	// BuildStats reports per-layer index construction time.
	BuildStats = index.BuildStats
	// QueryOptions switches query-processor ablations.
	QueryOptions = query.Options
	// QueryStats reports per-phase query cost and pruning counters.
	QueryStats = query.Stats
	// Result is one query answer.
	Result = query.Result
	// MallSpec parameterises the synthetic mall generator.
	MallSpec = gen.MallSpec
	// ObjectSpec parameterises uncertain-object generation.
	ObjectSpec = gen.ObjectSpec
)

// Pos builds a Position.
func Pos(x, y float64, floor int) Position { return indoor.Pos(x, y, floor) }

// R builds a rectangle from two opposite corners.
func R(x1, y1, x2, y2 float64) Rect { return geom.R(x1, y1, x2, y2) }

// RectPoly returns the polygon form of a rectangle, for AddPartition and
// AddHallway footprints.
func RectPoly(r Rect) Polygon { return geom.RectPoly(r) }

// NewBuilding returns an empty building with the given floor height in
// metres.
func NewBuilding(floorHeight float64) *Building { return indoor.NewBuilding(floorHeight) }

// GenerateMall builds the paper's synthetic shopping mall (§V-A).
func GenerateMall(spec MallSpec) (*Building, error) { return gen.Mall(spec) }

// GenerateObjects draws uncertain objects uniformly over a building's
// walkable space with truncated-Gaussian instance pdfs (§V-A).
func GenerateObjects(b *Building, spec ObjectSpec) []*Object { return gen.Objects(b, spec) }

// GenerateQueryPoints draws query positions uniformly over walkable space.
func GenerateQueryPoints(b *Building, n int, seed int64) []Position {
	return gen.QueryPoints(b, n, seed)
}

// DB couples a composite index with a query processor: the top-level handle
// a location-based service holds. An ephemeral DB comes from Open; a
// durable one from OpenDir (recovery) or Persist (attachment) — see
// durability.go for the checkpoint/WAL lifecycle.
type DB struct {
	idx   *index.Index
	proc  *query.Processor
	qopts QueryOptions

	// pipe is the commit pipeline every mutator delegates to: it owns the
	// routing between the raw index and the subscription engine, and is
	// shared with the network server and the replica replayer so all
	// three commit paths are literally the same code.
	pipe *pipeline.Pipeline

	// subs is the continuous-query engine, created lazily by the first
	// Subscribe. Once active, every DB mutator routes through it so
	// standing results reconcile with each update.
	subs     atomic.Pointer[query.Subscriptions]
	subsInit sync.Mutex

	// Durable state (nil/zero for ephemeral DBs): the attached store,
	// the recovery statistics OpenDir produced, and the background
	// compactor's lifecycle.
	st        *store.Store
	hist      *history.Provider
	recovery  RecoveryStats
	closedC   chan struct{}
	closeOnce sync.Once
	compactWG sync.WaitGroup
	compactMu sync.Mutex
}

// Open builds the composite index over the building and object set and
// returns the database handle with per-layer construction statistics.
func Open(b *Building, objs []*Object, opts Options) (*DB, BuildStats, error) {
	return OpenWithQueryOptions(b, objs, opts, QueryOptions{})
}

// OpenWithQueryOptions is Open with explicit query-processor options (used
// by the ablation benchmarks).
func OpenWithQueryOptions(b *Building, objs []*Object, opts Options, qopts QueryOptions) (*DB, BuildStats, error) {
	idx, stats, err := index.Build(b, objs, opts)
	if err != nil {
		return nil, stats, err
	}
	return newDB(idx, qopts), stats, nil
}

// newDB assembles a DB over a built or recovered index: query processor,
// and the commit pipeline wired to the lazily created subscription
// engine.
func newDB(idx *index.Index, qopts QueryOptions) *DB {
	db := &DB{idx: idx, proc: query.New(idx, qopts), qopts: qopts}
	db.pipe = pipeline.New(idx, func() *query.Subscriptions { return db.subs.Load() })
	return db
}

// Pipeline exposes the DB's commit pipeline — the mutation path shared by
// the facade, the network server and replica replay. Mutating through it
// is identical to mutating through the DB's own methods.
func (db *DB) Pipeline() *pipeline.Pipeline { return db.pipe }

// Index exposes the underlying composite index for advanced use (the
// benchmark harness and the baseline comparisons).
func (db *DB) Index() *index.Index { return db.idx }

// Building returns the indexed building.
func (db *DB) Building() *Building { return db.idx.Building() }

// NumObjects returns the number of indexed objects in the current
// snapshot.
func (db *DB) NumObjects() int {
	return db.idx.Objects().Len()
}

// Object returns an indexed object by id from the current snapshot, or
// nil.
func (db *DB) Object(id ObjectID) *Object {
	return db.idx.Objects().Get(id)
}

// RangeQuery evaluates iRQ(q, r): objects whose expected indoor distance
// from q is at most r metres (Definition 3, Algorithm 1).
func (db *DB) RangeQuery(q Position, r float64) ([]Result, *QueryStats, error) {
	return db.proc.RangeQuery(q, r)
}

// KNNQuery evaluates ikNNQ(q, k): the k objects with the smallest expected
// indoor distances from q (Definition 4, Algorithm 2).
func (db *DB) KNNQuery(q Position, k int) ([]Result, *QueryStats, error) {
	return db.proc.KNNQuery(q, k)
}

// Batch serving layer (internal/serve): a worker pool fans a slice of
// queries across CPUs, each query holding the index's read lock for its
// own evaluation.
type (
	// ServeConfig sizes the worker pool; zero Workers means GOMAXPROCS.
	ServeConfig = serve.Config
	// RangeRequest is one iRQ of a batch.
	RangeRequest = serve.RangeRequest
	// KNNRequest is one ikNNQ of a batch.
	KNNRequest = serve.KNNRequest
	// BatchResponse is one query's results, stats, error and latency.
	BatchResponse = serve.Response
	// BatchMetrics aggregates a batch: queries/sec, p50/p99 latency.
	BatchMetrics = serve.Metrics
)

// BatchRangeQuery evaluates the requests concurrently on a worker pool and
// returns per-query responses in request order plus aggregate throughput
// metrics. The batch pins ONE index snapshot: results are identical to
// calling RangeQuery in a loop with no concurrent writers, and under
// concurrent updates every query of the batch still observes the same
// consistent point-in-time state. Writers are never blocked by a running
// batch; their snapshots take effect from the next batch.
func (db *DB) BatchRangeQuery(reqs []RangeRequest, cfg ServeConfig) ([]BatchResponse, BatchMetrics) {
	return serve.NewPool(db.idx, db.qopts, cfg).RangeBatch(reqs)
}

// BatchKNNQuery is BatchRangeQuery for k-nearest-neighbour queries.
func (db *DB) BatchKNNQuery(reqs []KNNRequest, cfg ServeConfig) ([]BatchResponse, BatchMetrics) {
	return serve.NewPool(db.idx, db.qopts, cfg).KNNBatch(reqs)
}

// With active subscriptions, each single-object mutator below routes
// through the subscription engine as a one-element batch: the index
// mutation commits first, then the affected standing queries reconcile. A
// returned error may therefore come from the reconciliation pass AFTER
// the mutation committed — see ApplyObjectUpdates for the full
// error/commit semantics; do not blindly retry inserts or deletes.

// InsertObject adds an uncertain object (§III-C.2).
func (db *DB) InsertObject(o *Object) error { return db.pipe.InsertObject(o) }

// DeleteObject removes an object (§III-C.2).
func (db *DB) DeleteObject(id ObjectID) error { return db.pipe.DeleteObject(id) }

// UpdateObject replaces an object's uncertainty information (deletion
// followed by insertion).
func (db *DB) UpdateObject(o *Object) error { return db.pipe.UpdateObject(o) }

// MoveObject is the adjacency-accelerated location update for frequently
// reporting objects.
func (db *DB) MoveObject(o *Object) error { return db.pipe.MoveObject(o) }

// ObjectUpdate is one element of an ApplyObjectUpdates batch.
type ObjectUpdate = index.ObjectUpdate

// UpdateOp selects the mutation an ObjectUpdate applies.
type UpdateOp = index.UpdateOp

// Object-update operations for ApplyObjectUpdates.
const (
	// UpdateMove is the adjacency-accelerated location update (MoveObject).
	UpdateMove = index.UpdateMove
	// UpdateInsert indexes a new object (InsertObject).
	UpdateInsert = index.UpdateInsert
	// UpdateDelete removes the object with ID (DeleteObject).
	UpdateDelete = index.UpdateDelete
	// UpdateReplace swaps an object's uncertainty information
	// (UpdateObject).
	UpdateReplace = index.UpdateReplace
)

// ApplyObjectUpdates applies a batch of object-layer mutations as one
// copy-on-write edit publishing ONE snapshot: a movement tick over many
// objects costs a single swap instead of one per object, and concurrent
// readers observe the whole tick atomically. The index batch is
// transactional — on an index error nothing is applied. With active
// subscriptions the swap is followed by ONE reconciliation pass over the
// affected standing queries (fanned across workers), whose events land in
// the Events log; an error from that pass is also returned, and in that
// case the batch WAS applied (SnapshotSwaps distinguishes the two: it
// advanced iff the batch committed). Do not blindly retry a failed batch
// containing inserts or deletes without checking.
func (db *DB) ApplyObjectUpdates(ups []ObjectUpdate) error {
	return db.pipe.ApplyObjectUpdates(ups)
}

// SnapshotSwaps returns the number of index snapshots published so far
// (opening the DB counts as one). It is the observability hook for update
// coalescing: a movement tick through ApplyObjectUpdates advances it once.
func (db *DB) SnapshotSwaps() uint64 { return db.idx.SnapshotSwaps() }

// AddPartition indexes a partition previously added to the building.
func (db *DB) AddPartition(pid PartitionID) error { return db.pipe.AddPartition(pid) }

// RemovePartition removes a partition and its doors from the building and
// the index.
func (db *DB) RemovePartition(pid PartitionID) error { return db.pipe.RemovePartition(pid) }

// AttachDoor indexes a door previously added to the building.
func (db *DB) AttachDoor(did DoorID) error { return db.pipe.AttachDoor(did) }

// DetachDoor removes a door from the building and the index. An unknown
// door is a no-op; the only possible error is a refused durability log
// (fail-stop store), in which case nothing was detached.
func (db *DB) DetachDoor(did DoorID) error { return db.pipe.DetachDoor(did) }

// SetDoorClosed closes or reopens a door; queries observe the change
// immediately with no index maintenance. Active subscriptions refresh
// (door distances changed) and emit their membership deltas to the Events
// log.
func (db *DB) SetDoorClosed(did DoorID, closed bool) error {
	return db.pipe.SetDoorClosed(did, closed)
}

// SplitPartition mounts a sliding wall, dividing a rectangular partition in
// two (the paper's room-21 meeting-style scenario).
func (db *DB) SplitPartition(pid PartitionID, alongX bool, at float64) (PartitionID, PartitionID, error) {
	return db.pipe.SplitPartition(pid, alongX, at)
}

// MergePartitions dismounts a sliding wall, merging two rectangular
// partitions (banquet style).
func (db *DB) MergePartitions(pa, pb PartitionID) (PartitionID, error) {
	return db.pipe.MergePartitions(pa, pb)
}

// LocatePartition returns the partition containing a position via the
// current snapshot's tree tier, or -1.
func (db *DB) LocatePartition(q Position) PartitionID {
	return db.idx.LocatePartition(q)
}

// Continuous queries (the subscription engine). Subscriptions are standing
// iRQ/ikNNQ queries maintained incrementally: each keeps its filtering and
// subgraph phases cached, and an inverted unit→query index routes every
// update batch to only the subscriptions whose candidate-unit footprint
// the updated objects touch — per-update cost scales with affected
// queries, not registered ones.
type (
	// SubscriptionEvent reports one result change of a subscription. See
	// query.SubEvent for the ordering guarantee.
	SubscriptionEvent = query.SubEvent
	// SubscriptionEventKind is enter/leave/update.
	SubscriptionEventKind = query.EventKind
	// SubscriptionStats reports cumulative routing and reconciliation
	// counters.
	SubscriptionStats = query.SubStats
)

// Subscription event kinds.
const (
	// SubEnter reports an object entering a subscription's result set.
	SubEnter = query.EventEnter
	// SubLeave reports an object leaving a subscription's result set.
	SubLeave = query.EventLeave
	// SubUpdate reports a kNN member whose exact distance changed while it
	// stayed in the top-k.
	SubUpdate = query.EventUpdate
)

// SubscriptionSpec describes one standing query: set exactly one of R
// (standing range query, metres) or K (standing k-nearest-neighbour
// query).
type SubscriptionSpec struct {
	Q Position
	R float64
	K int
}

// subscriptions returns the continuous-query engine, creating it on first
// use: event logging on, reconciliation fanned across the serving layer's
// workers.
func (db *DB) subscriptions() *query.Subscriptions {
	if s := db.subs.Load(); s != nil {
		return s
	}
	db.subsInit.Lock()
	defer db.subsInit.Unlock()
	if s := db.subs.Load(); s != nil {
		return s
	}
	s := query.NewSubscriptions(db.idx, db.qopts)
	s.EnableEventLog()
	s.SetFanOut(func(n int, fn func(int)) { serve.FanOut(0, n, fn) })
	db.subs.Store(s)
	return s
}

// Subscribe installs a standing query and returns its handle and initial
// result set (ascending ids). From the first subscription on, route every
// update through the DB (not through Index() directly): mutators reconcile
// the affected subscriptions as part of the operation, and the resulting
// enter/leave/update events accumulate for Events. Subscription state is
// separate from monitors created by NewMonitor.
//
// The FIRST Subscribe creates the engine, and only mutators that observe
// it route through it — a mutation racing with that first call may apply
// directly to the index and go unreconciled. Establish the first
// subscription before concurrent mutators start (subsequent Subscribes
// are free of this caveat), or treat results as current only from the
// subscription's creation onwards.
//
// On a durable DB the registration is logged; if logging fails the
// subscription stays registered in memory (its record may already be on
// disk) and Subscribe returns both the valid handle AND the error — the
// store is fail-stop from that point.
func (db *DB) Subscribe(spec SubscriptionSpec) (int, []ObjectID, error) {
	var id int
	var members []ObjectID
	var err error
	var kind query.SubKind
	switch {
	case spec.R > 0 && spec.K == 0:
		kind = query.SubRange
		id, members, err = db.subscriptions().SubscribeRange(spec.Q, spec.R)
	case spec.K > 0 && spec.R == 0:
		kind = query.SubKNN
		id, members, err = db.subscriptions().SubscribeKNN(spec.Q, spec.K)
	default:
		return 0, nil, fmt.Errorf("indoorq: subscription needs exactly one of R > 0 or K > 0, got R=%g K=%d", spec.R, spec.K)
	}
	if err != nil {
		return 0, nil, err
	}
	if db.st != nil {
		rec := subRecOf(query.SubSpec{ID: id, Kind: kind, Q: spec.Q, R: spec.R, K: spec.K})
		if lerr := db.st.LogSubscribe(rec); lerr != nil {
			// The record may have reached the disk before the log
			// reported failure (e.g. a write that landed but an fsync
			// that did not), so rolling the registration back could
			// leave recovery resurrecting a subscription the caller
			// believes gone. Keep it registered — the conservative
			// direction, same as Unsubscribe — return its handle AND
			// the error; the store is fail-stop from here anyway.
			return id, members, lerr
		}
	}
	return id, members, nil
}

// Unsubscribe removes a subscription, reporting whether it existed. On a
// durable DB the removal is logged; a log failure cannot un-remove the
// subscription, so it only poisons the store (fail-stop) — recovery may
// then resurrect the subscription, which is the conservative direction.
func (db *DB) Unsubscribe(id int) bool {
	if s := db.subs.Load(); s != nil {
		ok := s.Unsubscribe(id)
		if ok && db.st != nil {
			_ = db.st.LogUnsubscribe(int64(id))
		}
		return ok
	}
	return false
}

// SubscriptionResults returns a subscription's current result set as
// ascending ids, or nil for unknown handles.
func (db *DB) SubscriptionResults(id int) []ObjectID {
	if s := db.subs.Load(); s != nil {
		return s.Results(id)
	}
	return nil
}

// SubscriptionTopK returns a kNN subscription's results ordered by
// (distance, id).
func (db *DB) SubscriptionTopK(id int) []Result {
	if s := db.subs.Load(); s != nil {
		return s.TopK(id)
	}
	return nil
}

// Events returns and clears the accumulated subscription events, in
// serialisation order (see SubscriptionEvent for the per-operation
// ordering guarantee). Replaying a subscription's enter/leave events over
// its initial result set reproduces its current result set — PROVIDED the
// log did not overflow: the log is bounded (DefaultEventLogCap events,
// SetEventLogCap adjusts), and past the bound the oldest events are
// dropped so an undrained consumer costs bounded memory instead of an
// OOM. Events discards the overflow signal; replay-based consumers must
// use DrainEvents and re-fetch SubscriptionResults when it reports an
// overflow.
func (db *DB) Events() []SubscriptionEvent {
	evs, _ := db.DrainEvents()
	return evs
}

// DrainEvents is Events plus the overflow signal: overflowed reports
// whether the bounded event log dropped events since the previous drain.
// When it did, the returned events are NOT a complete replay stream —
// re-fetch the affected subscriptions' current state with
// SubscriptionResults or SubscriptionTopK instead of replaying.
func (db *DB) DrainEvents() ([]SubscriptionEvent, bool) {
	if s := db.subs.Load(); s != nil {
		return s.DrainEventsOverflow()
	}
	return nil, false
}

// DefaultEventLogCap is the subscription event log's default bound.
const DefaultEventLogCap = query.DefaultEventLogCap

// SetEventLogCap bounds the subscription event log at n events (n <= 0
// removes the bound). On overflow the oldest events are dropped and the
// next DrainEvents reports it. Serving deployments size this to the
// slowest event consumer they are willing to buffer for.
func (db *DB) SetEventLogCap(n int) {
	db.subscriptions().SetEventLogCap(n)
}

// NumSubscriptions returns the number of active subscriptions.
func (db *DB) NumSubscriptions() int {
	if s := db.subs.Load(); s != nil {
		return s.NumSubscriptions()
	}
	return 0
}

// SubscriptionStatsSnapshot returns the engine's cumulative routing
// counters (zero before the first Subscribe).
func (db *DB) SubscriptionStatsSnapshot() SubscriptionStats {
	if s := db.subs.Load(); s != nil {
		return s.Stats()
	}
	return SubscriptionStats{}
}

// SetReconcileShards pins the subscription engine's reconciliation shard
// width; 0 restores the default (GOMAXPROCS at each pass). The merged
// event stream is identical for every width — this is a performance
// knob, not a semantic one.
func (db *DB) SetReconcileShards(n int) {
	db.subscriptions().SetShards(n)
}

// Monitor maintains standing (continuous) range queries over the index,
// reconciled incrementally as objects move. See NewMonitor.
type Monitor = query.Monitor

// MonitorEvent reports one membership change of a standing query.
type MonitorEvent = query.Event

// NewMonitor returns a continuous-query monitor over the database's index,
// evaluating with the same query options as the database's own queries.
// Route object updates and door toggles through the monitor so standing
// results stay consistent. New code should prefer Subscribe, which adds
// kNN subscriptions, batch reconciliation and the Events log.
func (db *DB) NewMonitor() *Monitor { return query.NewMonitor(db.idx, db.qopts) }

// Estimator predicts iRQ cardinalities without running the query.
type Estimator = query.Estimator

// NewEstimator returns a selectivity estimator over the database's index.
func (db *DB) NewEstimator() *Estimator { return query.NewEstimator(db.idx) }

// Save writes the building and every indexed object as JSON. The object
// set comes from a pinned snapshot; the building structure is read under
// the writer mutex's read side (mutators are briefly excluded, queries are
// not). Encoding goes to memory first and to w outside the lock, so a
// slow destination never stalls index writers.
func (db *DB) Save(w io.Writer) error {
	var buf bytes.Buffer
	err := func() error {
		db.idx.RLock()
		defer db.idx.RUnlock()
		snap := db.idx.Current()
		objs := make([]*Object, 0, snap.Objects().Len())
		for _, id := range snap.Objects().IDs() {
			objs = append(objs, snap.Objects().Get(id))
		}
		return serde.Encode(&buf, db.idx.Building(), objs)
	}()
	if err != nil {
		return err
	}
	_, err = w.Write(buf.Bytes())
	return err
}

// SaveBuilding writes a building (and optional objects) as JSON.
func SaveBuilding(w io.Writer, b *Building, objs []*Object) error {
	return serde.Encode(w, b, objs)
}

// LoadBuilding reads a building and objects from JSON.
func LoadBuilding(r io.Reader) (*Building, []*Object, error) {
	return serde.Decode(r)
}

// RenderOptions configures an SVG floor-plan rendering.
type RenderOptions = render.Options

// RenderSVG draws one floor of the database's building as SVG: partitions,
// doors (one-way arrows, closure marks), objects, the query point with its
// range circle, and optionally the decomposed index units. Like Save, the
// rendering happens under the read lock into memory; only the finished
// document is written to w.
func (db *DB) RenderSVG(w io.Writer, opts RenderOptions) error {
	var buf bytes.Buffer
	err := func() error {
		db.idx.RLock()
		defer db.idx.RUnlock()
		if opts.Units == nil {
			opts.Units = db.idx
		}
		return render.SVG(&buf, db.idx.Building(), opts)
	}()
	if err != nil {
		return err
	}
	_, err = w.Write(buf.Bytes())
	return err
}
