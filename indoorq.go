// Package indoorq is a Go implementation of "Efficient Distance-Aware Query
// Evaluation on Indoor Moving Objects" (Xie, Lu, Pedersen — ICDE 2013): a
// composite index for dynamic indoor spaces and uncertain moving objects
// that answers indoor range queries and k-nearest-neighbour queries by
// expected indoor walking distance, without pre-computing door-to-door
// distances.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/indoor:   partitions, doors, buildings, Algorithm 3
//   - internal/object:   instance-based uncertain objects
//   - internal/index:    the composite index (tree, topological, object and
//     skeleton layers) with dynamic maintenance
//   - internal/distance: expected indoor distances and all pruning bounds
//   - internal/query:    the iRQ and ikNNQ processors
//   - internal/gen:      the paper's synthetic mall workload
//
// Quick start:
//
//	b, _ := indoorq.GenerateMall(indoorq.MallSpec{Floors: 2})
//	objs := indoorq.GenerateObjects(b, indoorq.ObjectSpec{N: 1000, Radius: 10})
//	db, _, _ := indoorq.Open(b, objs, indoorq.Options{})
//	results, _, _ := db.RangeQuery(indoorq.Pos(300, 60, 0), 100)
//
// # Concurrency
//
// A DB is safe for concurrent use and serves reads under MVCC snapshot
// isolation. The index state lives in immutable snapshots published
// through an atomic pointer: every query pins the current snapshot with
// one wait-free load and evaluates against it with no locking, so
// *writers never block readers and readers never block writers*. Each of
// RangeQuery, KNNQuery, LocatePartition, Object and NumObjects observes
// one consistent point-in-time state; a batch (BatchRangeQuery,
// BatchKNNQuery) pins ONE snapshot for the whole batch, so all its
// queries agree with each other. Mutators — InsertObject, DeleteObject,
// UpdateObject, MoveObject, ApplyObjectUpdates, SetDoorClosed,
// AddPartition, RemovePartition, AttachDoor, DetachDoor, SplitPartition
// and MergePartitions — serialise only against each other: they build the
// successor snapshot copy-on-write (object updates share the whole
// topology; topology updates share the object store's untouched storage)
// and publish it atomically, so no reader ever observes a half-applied
// mutation. High-rate movement should go through ApplyObjectUpdates,
// which coalesces a batch of updates into one snapshot swap.
//
// Save and RenderSVG briefly exclude mutators (they read the building's
// partition/door structure directly). The Monitor serialises its update
// operations internally, so its event streams match a serial replay of
// the same updates; while serving concurrently, mutate the building only
// through the DB (or the Monitor), never through *Building directly.
//
// For throughput, fan query batches across CPUs with the serving layer:
//
//	reqs := make([]indoorq.RangeRequest, len(points))
//	for i, q := range points {
//		reqs[i] = indoorq.RangeRequest{Q: q, R: 100}
//	}
//	resps, m := db.BatchRangeQuery(reqs, indoorq.ServeConfig{}) // Workers: GOMAXPROCS
//	fmt.Printf("%.0f queries/sec, p99 %v\n", m.Throughput, m.P99)
package indoorq

import (
	"bytes"
	"io"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/indoor"
	"repro/internal/object"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/serde"
	"repro/internal/serve"
)

// Re-exported model types. The aliases keep one import path for users while
// the implementation stays in focused internal packages.
type (
	// Building is a dynamic multi-floor indoor space.
	Building = indoor.Building
	// Partition is a room, hallway or staircase.
	Partition = indoor.Partition
	// PartitionID identifies a partition.
	PartitionID = indoor.PartitionID
	// Door connects two partitions; it may be one-way or closed.
	Door = indoor.Door
	// DoorID identifies a door.
	DoorID = indoor.DoorID
	// Position is a planar point on a floor.
	Position = indoor.Position
	// Object is an uncertain indoor moving object.
	Object = object.Object
	// ObjectID identifies an object.
	ObjectID = object.ID
	// Instance is one existential sample of an object.
	Instance = object.Instance
	// Point is a planar point in metres.
	Point = geom.Point
	// Rect is a planar axis-aligned rectangle.
	Rect = geom.Rect
	// Polygon is a rectilinear simple polygon (partition footprint).
	Polygon = geom.Polygon
	// Options configures index construction.
	Options = index.Options
	// BuildStats reports per-layer index construction time.
	BuildStats = index.BuildStats
	// QueryOptions switches query-processor ablations.
	QueryOptions = query.Options
	// QueryStats reports per-phase query cost and pruning counters.
	QueryStats = query.Stats
	// Result is one query answer.
	Result = query.Result
	// MallSpec parameterises the synthetic mall generator.
	MallSpec = gen.MallSpec
	// ObjectSpec parameterises uncertain-object generation.
	ObjectSpec = gen.ObjectSpec
)

// Pos builds a Position.
func Pos(x, y float64, floor int) Position { return indoor.Pos(x, y, floor) }

// R builds a rectangle from two opposite corners.
func R(x1, y1, x2, y2 float64) Rect { return geom.R(x1, y1, x2, y2) }

// RectPoly returns the polygon form of a rectangle, for AddPartition and
// AddHallway footprints.
func RectPoly(r Rect) Polygon { return geom.RectPoly(r) }

// NewBuilding returns an empty building with the given floor height in
// metres.
func NewBuilding(floorHeight float64) *Building { return indoor.NewBuilding(floorHeight) }

// GenerateMall builds the paper's synthetic shopping mall (§V-A).
func GenerateMall(spec MallSpec) (*Building, error) { return gen.Mall(spec) }

// GenerateObjects draws uncertain objects uniformly over a building's
// walkable space with truncated-Gaussian instance pdfs (§V-A).
func GenerateObjects(b *Building, spec ObjectSpec) []*Object { return gen.Objects(b, spec) }

// GenerateQueryPoints draws query positions uniformly over walkable space.
func GenerateQueryPoints(b *Building, n int, seed int64) []Position {
	return gen.QueryPoints(b, n, seed)
}

// DB couples a composite index with a query processor: the top-level handle
// a location-based service holds.
type DB struct {
	idx   *index.Index
	proc  *query.Processor
	qopts QueryOptions
}

// Open builds the composite index over the building and object set and
// returns the database handle with per-layer construction statistics.
func Open(b *Building, objs []*Object, opts Options) (*DB, BuildStats, error) {
	return OpenWithQueryOptions(b, objs, opts, QueryOptions{})
}

// OpenWithQueryOptions is Open with explicit query-processor options (used
// by the ablation benchmarks).
func OpenWithQueryOptions(b *Building, objs []*Object, opts Options, qopts QueryOptions) (*DB, BuildStats, error) {
	idx, stats, err := index.Build(b, objs, opts)
	if err != nil {
		return nil, stats, err
	}
	return &DB{idx: idx, proc: query.New(idx, qopts), qopts: qopts}, stats, nil
}

// Index exposes the underlying composite index for advanced use (the
// benchmark harness and the baseline comparisons).
func (db *DB) Index() *index.Index { return db.idx }

// Building returns the indexed building.
func (db *DB) Building() *Building { return db.idx.Building() }

// NumObjects returns the number of indexed objects in the current
// snapshot.
func (db *DB) NumObjects() int {
	return db.idx.Objects().Len()
}

// Object returns an indexed object by id from the current snapshot, or
// nil.
func (db *DB) Object(id ObjectID) *Object {
	return db.idx.Objects().Get(id)
}

// RangeQuery evaluates iRQ(q, r): objects whose expected indoor distance
// from q is at most r metres (Definition 3, Algorithm 1).
func (db *DB) RangeQuery(q Position, r float64) ([]Result, *QueryStats, error) {
	return db.proc.RangeQuery(q, r)
}

// KNNQuery evaluates ikNNQ(q, k): the k objects with the smallest expected
// indoor distances from q (Definition 4, Algorithm 2).
func (db *DB) KNNQuery(q Position, k int) ([]Result, *QueryStats, error) {
	return db.proc.KNNQuery(q, k)
}

// Batch serving layer (internal/serve): a worker pool fans a slice of
// queries across CPUs, each query holding the index's read lock for its
// own evaluation.
type (
	// ServeConfig sizes the worker pool; zero Workers means GOMAXPROCS.
	ServeConfig = serve.Config
	// RangeRequest is one iRQ of a batch.
	RangeRequest = serve.RangeRequest
	// KNNRequest is one ikNNQ of a batch.
	KNNRequest = serve.KNNRequest
	// BatchResponse is one query's results, stats, error and latency.
	BatchResponse = serve.Response
	// BatchMetrics aggregates a batch: queries/sec, p50/p99 latency.
	BatchMetrics = serve.Metrics
)

// BatchRangeQuery evaluates the requests concurrently on a worker pool and
// returns per-query responses in request order plus aggregate throughput
// metrics. The batch pins ONE index snapshot: results are identical to
// calling RangeQuery in a loop with no concurrent writers, and under
// concurrent updates every query of the batch still observes the same
// consistent point-in-time state. Writers are never blocked by a running
// batch; their snapshots take effect from the next batch.
func (db *DB) BatchRangeQuery(reqs []RangeRequest, cfg ServeConfig) ([]BatchResponse, BatchMetrics) {
	return serve.NewPool(db.idx, db.qopts, cfg).RangeBatch(reqs)
}

// BatchKNNQuery is BatchRangeQuery for k-nearest-neighbour queries.
func (db *DB) BatchKNNQuery(reqs []KNNRequest, cfg ServeConfig) ([]BatchResponse, BatchMetrics) {
	return serve.NewPool(db.idx, db.qopts, cfg).KNNBatch(reqs)
}

// InsertObject adds an uncertain object (§III-C.2).
func (db *DB) InsertObject(o *Object) error { return db.idx.InsertObject(o) }

// DeleteObject removes an object (§III-C.2).
func (db *DB) DeleteObject(id ObjectID) error { return db.idx.DeleteObject(id) }

// UpdateObject replaces an object's uncertainty information (deletion
// followed by insertion).
func (db *DB) UpdateObject(o *Object) error { return db.idx.UpdateObject(o) }

// MoveObject is the adjacency-accelerated location update for frequently
// reporting objects.
func (db *DB) MoveObject(o *Object) error { return db.idx.MoveObject(o) }

// ObjectUpdate is one element of an ApplyObjectUpdates batch.
type ObjectUpdate = index.ObjectUpdate

// UpdateOp selects the mutation an ObjectUpdate applies.
type UpdateOp = index.UpdateOp

// Object-update operations for ApplyObjectUpdates.
const (
	// UpdateMove is the adjacency-accelerated location update (MoveObject).
	UpdateMove = index.UpdateMove
	// UpdateInsert indexes a new object (InsertObject).
	UpdateInsert = index.UpdateInsert
	// UpdateDelete removes the object with ID (DeleteObject).
	UpdateDelete = index.UpdateDelete
	// UpdateReplace swaps an object's uncertainty information
	// (UpdateObject).
	UpdateReplace = index.UpdateReplace
)

// ApplyObjectUpdates applies a batch of object-layer mutations as one
// copy-on-write edit publishing ONE snapshot: a movement tick over many
// objects costs a single swap instead of one per object, and concurrent
// readers observe the whole tick atomically. The batch is transactional —
// on the first error nothing is applied.
func (db *DB) ApplyObjectUpdates(ups []ObjectUpdate) error {
	return db.idx.ApplyObjectUpdates(ups)
}

// SnapshotSwaps returns the number of index snapshots published so far
// (opening the DB counts as one). It is the observability hook for update
// coalescing: a movement tick through ApplyObjectUpdates advances it once.
func (db *DB) SnapshotSwaps() uint64 { return db.idx.SnapshotSwaps() }

// AddPartition indexes a partition previously added to the building.
func (db *DB) AddPartition(pid PartitionID) error { return db.idx.AddPartition(pid) }

// RemovePartition removes a partition and its doors from the building and
// the index.
func (db *DB) RemovePartition(pid PartitionID) error { return db.idx.RemovePartition(pid) }

// AttachDoor indexes a door previously added to the building.
func (db *DB) AttachDoor(did DoorID) error { return db.idx.AttachDoor(did) }

// DetachDoor removes a door from the building and the index.
func (db *DB) DetachDoor(did DoorID) { db.idx.DetachDoor(did) }

// SetDoorClosed closes or reopens a door; queries observe the change
// immediately with no index maintenance.
func (db *DB) SetDoorClosed(did DoorID, closed bool) error {
	return db.idx.SetDoorClosed(did, closed)
}

// SplitPartition mounts a sliding wall, dividing a rectangular partition in
// two (the paper's room-21 meeting-style scenario).
func (db *DB) SplitPartition(pid PartitionID, alongX bool, at float64) (PartitionID, PartitionID, error) {
	return db.idx.SplitPartition(pid, alongX, at)
}

// MergePartitions dismounts a sliding wall, merging two rectangular
// partitions (banquet style).
func (db *DB) MergePartitions(pa, pb PartitionID) (PartitionID, error) {
	return db.idx.MergePartitions(pa, pb)
}

// LocatePartition returns the partition containing a position via the
// current snapshot's tree tier, or -1.
func (db *DB) LocatePartition(q Position) PartitionID {
	return db.idx.LocatePartition(q)
}

// Monitor maintains standing (continuous) range queries over the index,
// reconciled incrementally as objects move. See NewMonitor.
type Monitor = query.Monitor

// MonitorEvent reports one membership change of a standing query.
type MonitorEvent = query.Event

// NewMonitor returns a continuous-query monitor over the database's index,
// evaluating with the same query options as the database's own queries.
// Route object updates and door toggles through the monitor so standing
// results stay consistent.
func (db *DB) NewMonitor() *Monitor { return query.NewMonitor(db.idx, db.qopts) }

// Estimator predicts iRQ cardinalities without running the query.
type Estimator = query.Estimator

// NewEstimator returns a selectivity estimator over the database's index.
func (db *DB) NewEstimator() *Estimator { return query.NewEstimator(db.idx) }

// Save writes the building and every indexed object as JSON. The object
// set comes from a pinned snapshot; the building structure is read under
// the writer mutex's read side (mutators are briefly excluded, queries are
// not). Encoding goes to memory first and to w outside the lock, so a
// slow destination never stalls index writers.
func (db *DB) Save(w io.Writer) error {
	var buf bytes.Buffer
	err := func() error {
		db.idx.RLock()
		defer db.idx.RUnlock()
		snap := db.idx.Current()
		objs := make([]*Object, 0, snap.Objects().Len())
		for _, id := range snap.Objects().IDs() {
			objs = append(objs, snap.Objects().Get(id))
		}
		return serde.Encode(&buf, db.idx.Building(), objs)
	}()
	if err != nil {
		return err
	}
	_, err = w.Write(buf.Bytes())
	return err
}

// SaveBuilding writes a building (and optional objects) as JSON.
func SaveBuilding(w io.Writer, b *Building, objs []*Object) error {
	return serde.Encode(w, b, objs)
}

// LoadBuilding reads a building and objects from JSON.
func LoadBuilding(r io.Reader) (*Building, []*Object, error) {
	return serde.Decode(r)
}

// RenderOptions configures an SVG floor-plan rendering.
type RenderOptions = render.Options

// RenderSVG draws one floor of the database's building as SVG: partitions,
// doors (one-way arrows, closure marks), objects, the query point with its
// range circle, and optionally the decomposed index units. Like Save, the
// rendering happens under the read lock into memory; only the finished
// document is written to w.
func (db *DB) RenderSVG(w io.Writer, opts RenderOptions) error {
	var buf bytes.Buffer
	err := func() error {
		db.idx.RLock()
		defer db.idx.RUnlock()
		if opts.Units == nil {
			opts.Units = db.idx
		}
		return render.SVG(&buf, db.idx.Building(), opts)
	}()
	if err != nil {
		return err
	}
	_, err = w.Write(buf.Bytes())
	return err
}
