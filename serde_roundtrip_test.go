package indoorq

// Serde round-trip coverage for mutated databases: a DB that has been
// through topology mutations (sliding-wall split and merge, door
// closures) must Save a state whose Load answers queries identically to
// the live mutated DB. This pins two things at once: the serialiser
// captures post-mutation topology (including door-closure flags), and the
// MVCC snapshot the live DB serves from agrees with a cold rebuild of the
// serialised state.

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/indoor"
)

// roundTrip saves db, loads the bytes, and opens a fresh DB over them.
func roundTrip(t *testing.T, db *DB) *DB {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	b2, objs2, err := LoadBuilding(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := b2.Validate(); err != nil {
		t.Fatalf("loaded building invalid: %v", err)
	}
	db2, _, err := Open(b2, objs2, Options{})
	if err != nil {
		t.Fatalf("Open over loaded state: %v", err)
	}
	return db2
}

// assertSameAnswers compares iRQ and ikNNQ answers of the two databases
// over a query pool.
func assertSameAnswers(t *testing.T, label string, live, loaded *DB, queries []Position) {
	t.Helper()
	for qi, q := range queries {
		for _, r := range []float64{40, 120} {
			got, _, err := live.RangeQuery(q, r)
			if err != nil {
				t.Fatalf("%s q%d: live RangeQuery: %v", label, qi, err)
			}
			want, _, err := loaded.RangeQuery(q, r)
			if err != nil {
				t.Fatalf("%s q%d: loaded RangeQuery: %v", label, qi, err)
			}
			sameResultsLoose(t, label+"/iRQ", got, want)
		}
		got, _, err := live.KNNQuery(q, 10)
		if err != nil {
			t.Fatalf("%s q%d: live KNNQuery: %v", label, qi, err)
		}
		want, _, err := loaded.KNNQuery(q, 10)
		if err != nil {
			t.Fatalf("%s q%d: loaded KNNQuery: %v", label, qi, err)
		}
		sameResultsLoose(t, label+"/ikNN", got, want)
	}
}

func serdeFixture(t *testing.T) (*DB, *Building, []Position) {
	t.Helper()
	b, err := gen.Mall(gen.MallSpec{Floors: 2})
	if err != nil {
		t.Fatal(err)
	}
	objs := gen.Objects(b, gen.ObjectSpec{N: 250, Radius: 8, Instances: 10, Seed: 41})
	db, _, err := Open(b, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db, b, gen.QueryPoints(b, 4, 43)
}

func TestSaveLoadAfterSplitPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("mall fixture in -short mode")
	}
	db, b, queries := serdeFixture(t)
	room := pickRoom(t, b)
	rect := room.Bounds()
	if _, _, err := db.SplitPartition(room.ID, true, (rect.MinX+rect.MaxX)/2); err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, "split", db, roundTrip(t, db), queries)
}

func TestSaveLoadAfterMergePartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("mall fixture in -short mode")
	}
	db, b, queries := serdeFixture(t)
	room := pickRoom(t, b)
	rect := room.Bounds()
	pa, pb, err := db.SplitPartition(room.ID, true, (rect.MinX+rect.MaxX)/2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.MergePartitions(pa, pb); err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, "merge", db, roundTrip(t, db), queries)
}

func TestSaveLoadAfterSetDoorClosed(t *testing.T) {
	if testing.Short() {
		t.Skip("mall fixture in -short mode")
	}
	db, b, queries := serdeFixture(t)
	room := pickRoom(t, b)
	if err := db.SetDoorClosed(room.Doors[0], true); err != nil {
		t.Fatal(err)
	}
	// The closure flag must survive the round trip: the loaded DB answers
	// like the live one, and the door is still closed in the loaded model.
	loaded := roundTrip(t, db)
	if d := loaded.Building().Door(room.Doors[0]); d == nil || !d.Closed {
		t.Fatal("door closure lost in round trip")
	}
	assertSameAnswers(t, "doorClosed", db, loaded, queries)
}

func TestSaveLoadAfterCombinedMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("mall fixture in -short mode")
	}
	db, b, queries := serdeFixture(t)
	// Wall churn in one room, closure churn in another, plus object churn
	// through the coalescing batch API.
	var rooms []*Partition
	for _, p := range b.Partitions() {
		if p.Kind == indoor.Room && len(p.Doors) > 0 {
			rooms = append(rooms, p)
		}
	}
	if len(rooms) < 2 {
		t.Fatal("fixture needs two rooms with doors")
	}
	wallRoom, doorRoom := rooms[0], rooms[len(rooms)-1]
	rect := wallRoom.Bounds()
	pa, pb, err := db.SplitPartition(wallRoom.ID, true, (rect.MinX+rect.MaxX)/2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.MergePartitions(pa, pb); err != nil {
		t.Fatal(err)
	}
	if err := db.SetDoorClosed(doorRoom.Doors[0], true); err != nil {
		t.Fatal(err)
	}
	ups := make([]ObjectUpdate, 0, 8)
	for id := ObjectID(0); id < 8; id++ {
		if o := db.Object(id); o != nil {
			ups = append(ups, ObjectUpdate{Op: UpdateMove, Object: o})
		}
	}
	if err := db.ApplyObjectUpdates(ups); err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, "combined", db, roundTrip(t, db), queries)
}
