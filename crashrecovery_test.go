package indoorq

// Crash-recovery property suite: the WAL is truncated at every record
// boundary and at every byte offset of the final record, and recovery
// from each truncation must reproduce EXACTLY the state of an oracle DB
// that applied only the durable prefix of operations — serde document
// bytes, invariants, query answers and re-registered subscriptions.
// The workload source is the fuzz topology-mutation program format
// (FuzzTopologyMutations' corpus seeds drive the same op mix: door
// toggles, splits, merges, detach/re-attach cycles, moves, plus inserts
// and deletes), with each program step recorded as a replayable
// operation with its parameters resolved at execution time — id
// allocation determinism makes the oracle replay land on identical ids.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/object"
	"repro/internal/store"
)

// durableOp is one committed operation: a closure replaying it against
// the oracle with fully resolved parameters.
type durableOp struct {
	desc  string
	apply func(db *DB, b *Building)
}

// crashPrograms are the workload sources: the fuzz corpus seeds plus two
// longer mixes. Each byte program drives runCrashProgram's interpreter.
var crashPrograms = [][]byte{
	{2, 10, 0, 40, 3, 2, 11, 1, 200, 3},
	{0, 7, 0, 7, 4, 3, 5, 9, 22, 5, 250, 80},
	{2, 0, 0, 128, 2, 1, 1, 128, 3, 3, 4, 0, 4, 1},
	{5, 1, 100, 90, 6, 30, 40, 0, 3, 7, 12, 5, 2, 60, 2, 4, 1, 128, 5, 9, 200, 30, 6, 99, 99, 3, 7, 0, 1, 2, 0, 5},
}

// runCrashProgram drives db through one byte program, returning one
// durableOp per committed WAL record (verified by the caller against
// the log). Mutations that do not commit (rejected splits, unknown
// ids) are not recorded — they never reached the log either.
func runCrashProgram(t *testing.T, db *DB, b *Building, data []byte) []durableOp {
	t.Helper()
	var ops []durableOp
	// logged wraps a mutator: the op is recorded iff it published a
	// snapshot — the exact condition under which the commit hook
	// appended a record. Reconciliation errors after the commit are
	// deliberately ignored on both sides.
	logged := func(desc string, apply func(db *DB, b *Building)) {
		before := db.SnapshotSwaps()
		apply(db, b)
		after := db.SnapshotSwaps()
		if after == before {
			return
		}
		if after != before+1 {
			t.Fatalf("%s published %d snapshots, want 1", desc, after-before)
		}
		ops = append(ops, durableOp{desc: desc, apply: apply})
	}

	i := 0
	next := func() (byte, bool) {
		if i >= len(data) {
			return 0, false
		}
		v := data[i]
		i++
		return v, true
	}
	type splitPair struct{ a, b PartitionID }
	var splits []splitPair
	nextInsert := ObjectID(1000)

	for {
		op, ok := next()
		if !ok {
			return ops
		}
		switch op % 8 {
		case 0, 1: // toggle a door
			v, ok := next()
			if !ok {
				return ops
			}
			doors := b.Doors()
			if len(doors) == 0 {
				break
			}
			did := doors[int(v)%len(doors)].ID
			closed := op%8 == 0
			logged("SetDoorClosed", func(db *DB, b *Building) {
				_ = db.SetDoorClosed(did, closed)
			})
		case 2: // split a partition
			pv, ok1 := next()
			axis, ok2 := next()
			frac, ok3 := next()
			if !ok1 || !ok2 || !ok3 {
				return ops
			}
			parts := b.Partitions()
			if len(parts) == 0 {
				break
			}
			p := parts[int(pv)%len(parts)]
			bounds := p.Bounds()
			alongX := axis%2 == 0
			var at float64
			if alongX {
				at = bounds.MinX + (bounds.MaxX-bounds.MinX)*(0.1+0.8*float64(frac)/255)
			} else {
				at = bounds.MinY + (bounds.MaxY-bounds.MinY)*(0.1+0.8*float64(frac)/255)
			}
			pid := p.ID
			var pa, pb PartitionID
			logged("SplitPartition", func(db *DB, b *Building) {
				pa, pb, _ = db.SplitPartition(pid, alongX, at)
			})
			if pa >= 0 && pb >= 0 && pa != pb {
				splits = append(splits, splitPair{a: pa, b: pb})
			}
		case 3: // merge the last split pair
			if len(splits) == 0 {
				break
			}
			sp := splits[len(splits)-1]
			splits = splits[:len(splits)-1]
			logged("MergePartitions", func(db *DB, b *Building) {
				_, _ = db.MergePartitions(sp.a, sp.b)
			})
		case 4: // detach a door, re-attach an equivalent one
			v, ok := next()
			if !ok {
				return ops
			}
			doors := b.Doors()
			if len(doors) == 0 {
				break
			}
			d := doors[int(v)%len(doors)]
			did, pos, floor, p1, p2 := d.ID, d.Pos, d.Floor, d.P1, d.P2
			logged("DetachDoor", func(db *DB, b *Building) {
				_ = db.DetachDoor(did)
			})
			logged("AttachDoor", func(db *DB, b *Building) {
				if nd, err := b.AddDoor(pos, floor, p1, p2); err == nil {
					_ = db.AttachDoor(nd.ID)
				}
			})
		case 5: // move an object
			ov, ok1 := next()
			xv, ok2 := next()
			yv, ok3 := next()
			if !ok1 || !ok2 || !ok3 {
				return ops
			}
			oid := ObjectID(int(ov) % 40)
			if db.Object(oid) == nil {
				break
			}
			pos := Pos(600*float64(xv)/255, 600*float64(yv)/255, 0)
			if db.LocatePartition(pos) < 0 {
				break
			}
			logged("MoveObject", func(db *DB, b *Building) {
				_ = db.MoveObject(object.PointObject(oid, pos))
			})
		case 6: // insert a fresh point object
			xv, ok1 := next()
			yv, ok2 := next()
			if !ok1 || !ok2 {
				return ops
			}
			pos := Pos(600*float64(xv)/255, 600*float64(yv)/255, 0)
			if db.LocatePartition(pos) < 0 {
				break
			}
			oid := nextInsert
			nextInsert++
			logged("InsertObject", func(db *DB, b *Building) {
				_ = db.InsertObject(object.PointObject(oid, pos))
			})
		default: // delete an object
			ov, ok := next()
			if !ok {
				return ops
			}
			oid := ObjectID(int(ov) % 40)
			if db.Object(oid) == nil {
				break
			}
			logged("DeleteObject", func(db *DB, b *Building) {
				_ = db.DeleteObject(oid)
			})
		}
	}
}

// subHandles returns the registered subscription specs (serde form) for
// comparison between recovered and oracle engines.
func subState(db *DB) (specs []any, results map[int][]ObjectID) {
	results = make(map[int][]ObjectID)
	for _, rec := range db.subRecs() {
		specs = append(specs, rec)
		results[int(rec.ID)] = db.SubscriptionResults(int(rec.ID))
	}
	return specs, results
}

func TestCrashRecoveryKillAtAnyOffset(t *testing.T) {
	for pi, prog := range crashPrograms {
		prog := prog
		t.Run("", func(t *testing.T) {
			// Live DB with persistence from the start. Compaction is
			// disabled so generation 0 holds the entire log.
			freshDB := func() (*DB, *Building) {
				b, err := GenerateMall(MallSpec{Floors: 1})
				if err != nil {
					t.Fatal(err)
				}
				objs := GenerateObjects(b, ObjectSpec{N: 40, Radius: 6, Instances: 6, Seed: 11})
				db, _, err := Open(b, objs, Options{})
				if err != nil {
					t.Fatal(err)
				}
				return db, b
			}
			db, b := freshDB()
			dir := t.TempDir()
			if err := db.Persist(dir, DurabilityOptions{CompactBytes: -1}); err != nil {
				t.Fatal(err)
			}
			queries := GenerateQueryPoints(b, 2, 12)

			// Standing queries participate in the durable timeline: two
			// up front, one unsubscribed mid-program.
			var ops []durableOp
			subscribe := func(spec SubscriptionSpec) {
				if _, _, err := db.Subscribe(spec); err != nil {
					t.Fatal(err)
				}
				ops = append(ops, durableOp{desc: "Subscribe", apply: func(db *DB, b *Building) {
					if _, _, err := db.Subscribe(spec); err != nil {
						t.Fatal(err)
					}
				}})
			}
			subscribe(SubscriptionSpec{Q: queries[0], R: 120})
			subscribe(SubscriptionSpec{Q: queries[1], K: 5})

			half := len(prog) / 2
			ops = append(ops, runCrashProgram(t, db, b, prog[:half])...)
			victim := 0 // the range subscription
			if db.Unsubscribe(victim) {
				ops = append(ops, durableOp{desc: "Unsubscribe", apply: func(db *DB, b *Building) {
					db.Unsubscribe(victim)
				}})
			}
			ops = append(ops, runCrashProgram(t, db, b, prog[half:])...)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			walPath := filepath.Join(dir, "wal-00000000000000000000.log")
			full, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			ends, err := store.RecordEnds(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if len(ends) != len(ops) {
				t.Fatalf("program %d: %d WAL records vs %d recorded operations — the 1:1 mapping broke", pi, len(ends), len(ops))
			}
			ckptRaw, err := os.ReadFile(filepath.Join(dir, "checkpoint-00000000000000000000.ckpt"))
			if err != nil {
				t.Fatal(err)
			}

			// recoverAt opens a copy of the store truncated to cut bytes.
			recoverAt := func(cut int64) *DB {
				t.Helper()
				cdir := t.TempDir()
				if err := os.WriteFile(filepath.Join(cdir, "checkpoint-00000000000000000000.ckpt"), ckptRaw, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(cdir, "wal-00000000000000000000.log"), full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				rdb, err := OpenDir(cdir, DurabilityOptions{CompactBytes: -1})
				if err != nil {
					t.Fatalf("recovery at cut %d: %v", cut, err)
				}
				return rdb
			}

			// oracle replays the durable prefix on an ephemeral DB; it
			// advances incrementally as the boundary sweep walks forward.
			oracle, ob := freshDB()
			compare := func(cut int64, k int) {
				t.Helper()
				rdb := recoverAt(cut)
				defer rdb.Close()
				if err := rdb.Index().CheckInvariants(); err != nil {
					t.Fatalf("cut %d (%d ops durable): invariants: %v", cut, k, err)
				}
				want, got := saveBytes(t, oracle), saveBytes(t, rdb)
				if !bytes.Equal(want, got) {
					t.Fatalf("cut %d (%d ops durable, last %q): serde state diverged", cut, k, ops[max(k-1, 0)].desc)
				}
				assertSameAnswers(t, "crash", oracle, rdb, queries)
				oSpecs, oResults := subState(oracle)
				rSpecs, rResults := subState(rdb)
				if !reflect.DeepEqual(oSpecs, rSpecs) {
					t.Fatalf("cut %d (%d ops durable): subscriptions %v, oracle %v", cut, k, rSpecs, oSpecs)
				}
				if !reflect.DeepEqual(oResults, rResults) {
					t.Fatalf("cut %d (%d ops durable): subscription results %v, oracle %v", cut, k, rResults, oResults)
				}
			}

			// Sweep every record boundary (incl. the empty log)...
			compare(0, 0)
			for k, end := range ends {
				ops[k].apply(oracle, ob)
				if k < len(ends)-1 {
					compare(end, k+1)
				} else if end != int64(len(full)) {
					t.Fatalf("final record ends at %d, file has %d bytes", end, len(full))
				}
			}
			// ...then every byte offset of the final record: all must
			// recover to the durable prefix without the final op. The
			// oracle rolls back by replaying all but the last op.
			oracle, ob = freshDB()
			for _, op := range ops[:len(ops)-1] {
				op.apply(oracle, ob)
			}
			lo := int64(0)
			if len(ends) > 1 {
				lo = ends[len(ends)-2]
			}
			for cut := lo + 1; cut < int64(len(full)); cut++ {
				compare(cut, len(ops)-1)
			}
			// And the full log recovers the final op.
			ops[len(ops)-1].apply(oracle, ob)
			compare(int64(len(full)), len(ops))
		})
	}
}

// normData canonicalizes checkpoint data for comparison: subscription
// registration order is not part of the state.
func normData(d store.Data) store.Data {
	subs := append([]SubscriptionRec(nil), d.Subs...)
	sort.Slice(subs, func(i, j int) bool { return subs[i].ID < subs[j].ID })
	d.Subs = subs
	return d
}

// TestCrashRecoveryAsOfOracle extends the kill-at-any-boundary sweep
// into the time dimension: after truncating the WAL at EVERY record
// boundary and recovering, AsOf must reconstruct — byte-for-byte — the
// state after every LSN inside the durable prefix, and must refuse any
// LSN past the durable tail with the clean ErrHistoryFuture bound
// (never a stale or partial answer).
func TestCrashRecoveryAsOfOracle(t *testing.T) {
	for pi, prog := range crashPrograms {
		prog := prog
		t.Run("", func(t *testing.T) {
			freshDB := func() (*DB, *Building) {
				b, err := GenerateMall(MallSpec{Floors: 1})
				if err != nil {
					t.Fatal(err)
				}
				objs := GenerateObjects(b, ObjectSpec{N: 40, Radius: 6, Instances: 6, Seed: 11})
				db, _, err := Open(b, objs, Options{})
				if err != nil {
					t.Fatal(err)
				}
				return db, b
			}
			db, b := freshDB()
			dir := t.TempDir()
			if err := db.Persist(dir, DurabilityOptions{CompactBytes: -1}); err != nil {
				t.Fatal(err)
			}
			queries := GenerateQueryPoints(b, 2, 12)

			// Same durable timeline shape as the byte-offset sweep:
			// standing queries bracket the mutation program so history
			// reconstruction covers subscription records too.
			var ops []durableOp
			spec := SubscriptionSpec{Q: queries[0], R: 120}
			if _, _, err := db.Subscribe(spec); err != nil {
				t.Fatal(err)
			}
			ops = append(ops, durableOp{desc: "Subscribe", apply: func(db *DB, b *Building) {
				if _, _, err := db.Subscribe(spec); err != nil {
					t.Fatal(err)
				}
			}})
			ops = append(ops, runCrashProgram(t, db, b, prog)...)
			if db.Unsubscribe(0) {
				ops = append(ops, durableOp{desc: "Unsubscribe", apply: func(db *DB, b *Building) {
					db.Unsubscribe(0)
				}})
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			walPath := filepath.Join(dir, "wal-00000000000000000000.log")
			full, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			ends, err := store.RecordEnds(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if len(ends) != len(ops) {
				t.Fatalf("program %d: %d WAL records vs %d recorded operations", pi, len(ends), len(ops))
			}
			ckptRaw, err := os.ReadFile(filepath.Join(dir, "checkpoint-00000000000000000000.ckpt"))
			if err != nil {
				t.Fatal(err)
			}

			// The from-scratch oracle: an independent replay of the
			// durable operations, captured after every step. oracleData[k]
			// is the canonical state after LSN k (k ops applied).
			oracle, ob := freshDB()
			oracleData := make([]store.Data, len(ops)+1)
			captureOracle := func(lsn uint64) store.Data {
				d, err := store.Capture(oracle.idx, qflagsOf(oracle.qopts), oracle.subRecs(), lsn)
				if err != nil {
					t.Fatal(err)
				}
				return normData(d)
			}
			oracleData[0] = captureOracle(0)
			for k, op := range ops {
				op.apply(oracle, ob)
				oracleData[k+1] = captureOracle(uint64(k + 1))
			}

			recoverAt := func(cut int64) *DB {
				t.Helper()
				cdir := t.TempDir()
				if err := os.WriteFile(filepath.Join(cdir, "checkpoint-00000000000000000000.ckpt"), ckptRaw, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(cdir, "wal-00000000000000000000.log"), full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				rdb, err := OpenDir(cdir, DurabilityOptions{CompactBytes: -1})
				if err != nil {
					t.Fatalf("recovery at cut %d: %v", cut, err)
				}
				return rdb
			}

			sweep := func(cut int64, k int) {
				t.Helper()
				rdb := recoverAt(cut)
				defer rdb.Close()
				hp := rdb.History()
				for lsn := 0; lsn <= k; lsn++ {
					got, err := hp.CaptureAt(uint64(lsn))
					if err != nil {
						t.Fatalf("cut %d: CaptureAt(%d): %v", cut, lsn, err)
					}
					if !reflect.DeepEqual(normData(got), oracleData[lsn]) {
						t.Fatalf("cut %d: AsOf state at lsn %d diverged from the from-scratch oracle (last durable op %q)",
							cut, lsn, ops[max(lsn-1, 0)].desc)
					}
				}
				// One past the durable tail: a clean bounds error, through
				// the facade the way a caller would hit it.
				if _, err := rdb.AsOf(uint64(k) + 1); !errors.Is(err, ErrHistoryFuture) {
					t.Fatalf("cut %d: AsOf(%d) past the durable tail: got %v, want ErrHistoryFuture", cut, k+1, err)
				}
			}

			sweep(0, 0)
			for k, end := range ends {
				sweep(end, k+1)
			}
		})
	}
}
