package indoorq

// Serial/parallel equivalence and throughput tests for the batch serving
// layer. The equivalence tests are the correctness contract of
// BatchRangeQuery/BatchKNNQuery: for any seed, the batch answers must be
// byte-identical (IDs and distance bits) to looping the serial queries —
// parallelism must never change an answer.

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/gen"
)

// batchFixture is the acceptance workload of the serving layer: the
// Floors=2 mall with N=1000 objects.
func batchFixture(t testing.TB, seed int64) (*DB, []Position) {
	t.Helper()
	b, err := gen.Mall(gen.MallSpec{Floors: 2})
	if err != nil {
		t.Fatal(err)
	}
	objs := gen.Objects(b, gen.ObjectSpec{N: 1000, Radius: 8, Instances: 20, Seed: seed})
	db, _, err := Open(b, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db, gen.QueryPoints(b, 24, seed*7+1)
}

// sameResults compares two result slices exactly: same IDs in the same
// order and bit-identical distances (NaN marks bound-accepted iRQ results;
// identical code paths must produce identical bits).
func sameResults(t *testing.T, label string, serial, batch []Result) {
	t.Helper()
	if len(serial) != len(batch) {
		t.Fatalf("%s: serial %d results, batch %d", label, len(serial), len(batch))
	}
	for i := range serial {
		if serial[i].ID != batch[i].ID {
			t.Fatalf("%s: result %d id: serial %d, batch %d", label, i, serial[i].ID, batch[i].ID)
		}
		sb, bb := math.Float64bits(serial[i].Distance), math.Float64bits(batch[i].Distance)
		if sb != bb {
			t.Fatalf("%s: result %d (object %d) distance: serial %v (bits %x), batch %v (bits %x)",
				label, i, serial[i].ID, serial[i].Distance, sb, batch[i].Distance, bb)
		}
	}
}

func TestBatchRangeEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		db, queries := batchFixture(t, seed)
		reqs := make([]RangeRequest, 0, len(queries)*2)
		for i, q := range queries {
			reqs = append(reqs, RangeRequest{Q: q, R: 60 + float64(i%3)*40})
		}
		serial := make([][]Result, len(reqs))
		for i, r := range reqs {
			res, _, err := db.RangeQuery(r.Q, r.R)
			if err != nil {
				t.Fatalf("seed %d: serial query %d: %v", seed, i, err)
			}
			serial[i] = res
		}
		resps, m := db.BatchRangeQuery(reqs, ServeConfig{Workers: 8})
		if m.Queries != len(reqs) || m.Errors != 0 {
			t.Fatalf("seed %d: metrics %d queries %d errors, want %d and 0", seed, m.Queries, m.Errors, len(reqs))
		}
		for i := range reqs {
			if resps[i].Err != nil {
				t.Fatalf("seed %d: batch query %d: %v", seed, i, resps[i].Err)
			}
			sameResults(t, "iRQ", serial[i], resps[i].Results)
		}
	}
}

func TestBatchKNNEquivalence(t *testing.T) {
	for _, seed := range []int64{4, 5, 6} {
		db, queries := batchFixture(t, seed)
		reqs := make([]KNNRequest, 0, len(queries))
		for i, q := range queries {
			reqs = append(reqs, KNNRequest{Q: q, K: 5 + i%3*10})
		}
		serial := make([][]Result, len(reqs))
		for i, r := range reqs {
			res, _, err := db.KNNQuery(r.Q, r.K)
			if err != nil {
				t.Fatalf("seed %d: serial kNN %d: %v", seed, i, err)
			}
			serial[i] = res
		}
		resps, _ := db.BatchKNNQuery(reqs, ServeConfig{Workers: 8})
		for i := range reqs {
			if resps[i].Err != nil {
				t.Fatalf("seed %d: batch kNN %d: %v", seed, i, resps[i].Err)
			}
			sameResults(t, "ikNN", serial[i], resps[i].Results)
		}
	}
}

// TestBatchWhileWriting checks that a batch running concurrently with
// writers completes without error — answers are time-dependent, so only
// integrity is asserted.
func TestBatchWhileWriting(t *testing.T) {
	db, queries := batchFixture(t, 9)
	reqs := make([]RangeRequest, 0, 48)
	for i := 0; i < 48; i++ {
		reqs = append(reqs, RangeRequest{Q: queries[i%len(queries)], R: 80})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			o := db.Object(ObjectID(i))
			if o == nil {
				continue
			}
			if err := db.UpdateObject(o); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
		}
	}()
	resps, m := db.BatchRangeQuery(reqs, ServeConfig{Workers: 4})
	<-done
	if m.Errors != 0 {
		t.Fatalf("batch under writes: %d errors", m.Errors)
	}
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("batch under writes: query %d: %v", i, r.Err)
		}
	}
	if err := db.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchThroughputSpeedup asserts the acceptance criterion of the
// serving layer — ≥2× aggregate throughput at 8 workers vs 1 worker on the
// Floors=2, N=1000 workload — on hardware that can express it. Single-core
// machines and race-instrumented builds skip (the benchmark
// BenchmarkBatchThroughput reports the full sweep there).
func TestBatchThroughputSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts timing; see BenchmarkBatchThroughput")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skipf("GOMAXPROCS=%d: parallel speedup is not expressible on one CPU", procs)
	}
	if testing.Short() {
		t.Skip("timing test skipped in short mode")
	}
	db, queries := batchFixture(t, 11)
	reqs := make([]RangeRequest, 0, 96)
	for i := 0; i < 96; i++ {
		reqs = append(reqs, RangeRequest{Q: queries[i%len(queries)], R: 100})
	}
	db.BatchRangeQuery(reqs[:16], ServeConfig{Workers: 1}) // warm-up

	best1, best8 := 0.0, 0.0
	for trial := 0; trial < 3; trial++ {
		_, m1 := db.BatchRangeQuery(reqs, ServeConfig{Workers: 1})
		_, m8 := db.BatchRangeQuery(reqs, ServeConfig{Workers: 8})
		if m1.Throughput > best1 {
			best1 = m1.Throughput
		}
		if m8.Throughput > best8 {
			best8 = m8.Throughput
		}
	}
	speedup := best8 / best1
	t.Logf("throughput: 1 worker %.1f q/s, 8 workers %.1f q/s, speedup %.2fx (GOMAXPROCS=%d)",
		best1, best8, speedup, procs)
	// Demand the full 2x only where 8 workers have ≥4 CPUs to run on;
	// with 2–3 CPUs the theoretical ceiling is the CPU count itself.
	want := 2.0
	if procs < 4 {
		want = 1.3
	}
	if speedup < want {
		t.Fatalf("8-worker speedup %.2fx below %.1fx on %d CPUs", speedup, want, procs)
	}
}
