package indoorq

import (
	"math"
	"testing"
)

func openSmall(t *testing.T) *DB {
	t.Helper()
	b, err := GenerateMall(MallSpec{Floors: 2})
	if err != nil {
		t.Fatal(err)
	}
	objs := GenerateObjects(b, ObjectSpec{N: 200, Radius: 10, Instances: 20, Seed: 1})
	db, stats, err := Open(b, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total() <= 0 {
		t.Error("build stats must be positive")
	}
	return db
}

func TestFacadeEndToEnd(t *testing.T) {
	db := openSmall(t)
	if db.NumObjects() != 200 {
		t.Fatalf("objects = %d", db.NumObjects())
	}
	qs := GenerateQueryPoints(db.Building(), 3, 2)
	for _, q := range qs {
		rs, st, err := db.RangeQuery(q, 100)
		if err != nil {
			t.Fatal(err)
		}
		if st.Total() <= 0 {
			t.Error("query stats must be positive")
		}
		for _, r := range rs {
			if db.Object(r.ID) == nil {
				t.Fatalf("result %d not in store", r.ID)
			}
		}
		ks, _, err := db.KNNQuery(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(ks) != 10 {
			t.Fatalf("kNN returned %d", len(ks))
		}
	}
}

func TestFacadeDynamics(t *testing.T) {
	db := openSmall(t)
	q := GenerateQueryPoints(db.Building(), 1, 3)[0]

	// Object lifecycle through the facade.
	o := &Object{ID: 9999, Instances: []Instance{{Pos: q, P: 1}}}
	if err := db.InsertObject(o); err != nil {
		t.Fatal(err)
	}
	rs, _, err := db.RangeQuery(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.ID == 9999 {
			found = true
		}
	}
	if !found {
		t.Error("inserted object not found at distance 0")
	}
	if err := db.DeleteObject(9999); err != nil {
		t.Fatal(err)
	}

	// Topology through the facade: split the query's partition, then
	// merge it back; queries must keep working.
	pid := db.LocatePartition(q)
	if pid < 0 {
		t.Fatal("query point not located")
	}
	part := db.Building().Partition(pid)
	bounds := part.Bounds()
	if part.Kind == 0 { // room: splittable
		mid := (bounds.MinX + bounds.MaxX) / 2
		pa, pb, err := db.SplitPartition(pid, true, mid)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := db.RangeQuery(q, 50); err != nil {
			t.Fatal(err)
		}
		if _, err := db.MergePartitions(pa, pb); err != nil {
			t.Fatal(err)
		}
		if _, _, err := db.RangeQuery(q, 50); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeZeroRadiusAndHelpers(t *testing.T) {
	db := openSmall(t)
	q := Pos(300, 60, 0)
	rs, _, err := db.RangeQuery(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if !math.IsNaN(r.Distance) && r.Distance > 0 {
			t.Error("r=0 results must be at distance 0")
		}
	}
	if got := R(3, 4, 1, 2); got.MinX != 1 || got.MaxY != 4 {
		t.Errorf("R helper = %+v", got)
	}
}
