package indoorq

// Durability: the facade over internal/store. A DB is either ephemeral
// (Open / OpenWithQueryOptions) or durable — attached to a store
// directory holding a checkpoint and a write-ahead log. Persist attaches
// a fresh directory to a live DB; OpenDir recovers a DB from one. Every
// mutator of a durable DB logs its logical operation to the WAL from
// inside the index writer mutex, strictly before the MVCC snapshot
// publishes; Subscribe and Unsubscribe log registration changes so
// standing queries survive restarts (their result state is recomputed on
// recovery, not persisted). The WAL is folded into a fresh checkpoint
// automatically once it outgrows DurabilityOptions.CompactBytes, and on
// demand through Compact.
//
// A WAL I/O failure is fail-stop: the store poisons itself and every
// subsequent mutation returns the original error; queries keep working.
// Close flushes and fsyncs the log; after Close the DB is read-only in
// the same fail-stop sense.

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/serde"
	"repro/internal/store"
)

// SyncPolicy selects when the write-ahead log is fsynced.
type SyncPolicy = store.SyncPolicy

// WAL fsync policies.
const (
	// SyncGrouped (the default) batches appends and fsyncs once per
	// group-commit window: a crash loses at most the window, order is
	// always preserved, and paced-churn throughput stays within a few
	// percent of the WAL-off baseline.
	SyncGrouped = store.SyncGrouped
	// SyncAlways fsyncs inside every mutation before it is acknowledged.
	SyncAlways = store.SyncAlways
	// SyncNever leaves syncing to the OS (still flushed on checkpoint
	// and Close).
	SyncNever = store.SyncNever
)

// DurabilityOptions configures the attached store: fsync policy,
// group-commit window and the WAL size that triggers automatic
// compaction.
type DurabilityOptions = store.Options

// RecoveryStats reports what OpenDir found and did: the checkpoint it
// started from, the WAL records replayed on top, and the torn bytes
// truncated.
type RecoveryStats = store.RecoveryStats

// Persist attaches durable storage to a live DB: dir receives the
// initial checkpoint (building, objects, registered subscriptions) and
// an empty WAL, and from this call on every mutation is logged before it
// publishes. Fails if dir already holds a store — recover that with
// OpenDir instead. Attach before sharing the DB between goroutines: a
// mutation racing the attachment itself may precede the initial
// checkpoint and go unlogged.
func (db *DB) Persist(dir string, opts DurabilityOptions) error {
	if db.st != nil {
		return fmt.Errorf("indoorq: DB already persists to a store")
	}
	st, err := store.Create(dir, db.idx, qflagsOf(db.qopts), db.subRecs(), opts)
	if err != nil {
		return err
	}
	db.attachStore(st)
	return nil
}

// OpenDir recovers a durable DB from a store directory: the newest valid
// checkpoint is loaded, the WAL tail replayed (a torn final record is
// truncated), subscriptions re-registered under their original handles,
// and logging resumes where the durable tail ended. RecoveryInfo reports
// what happened.
func OpenDir(dir string, opts DurabilityOptions) (*DB, error) {
	st, idx, info, err := store.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	db := newDB(idx, qoptsOf(info.QueryFlags))
	db.restoreSubs(info.Subs)
	db.recovery = info.Stats
	db.attachStore(st)
	return db, nil
}

// Store returns the DB's attached durable store (nil for an ephemeral
// DB). The serving layer uses it to expose the replication feed — the
// newest checkpoint for replica bootstrap and the WAL tail for
// streaming.
func (db *DB) Store() *store.Store { return db.st }

// DurabilityErr reports the DB's degraded state: nil while healthy (or
// ephemeral), the sticky log error once the WAL has fail-stopped. A
// degraded DB keeps answering queries and serving the replication feed
// but refuses every mutation with this error — the serving tier
// surfaces it as a 503 read-only mode and flips /readyz.
func (db *DB) DurabilityErr() error {
	if db.st == nil {
		return nil
	}
	return db.st.FailStopped()
}

// RecoveryInfo returns the statistics of the recovery that produced this
// DB (zero for DBs not created by OpenDir).
func (db *DB) RecoveryInfo() RecoveryStats { return db.recovery }

// WALSize returns the active write-ahead-log generation's size in
// bytes, buffered appends included; 0 for an ephemeral DB.
func (db *DB) WALSize() int64 {
	if db.st == nil {
		return 0
	}
	return db.st.WALSize()
}

// Checkpoint writes the database's current state — building topology,
// object store and registered subscriptions — to path as one atomically
// renamed, CRC-checked snapshot file, loadable with LoadCheckpoint. It
// works on ephemeral and durable DBs alike and does not interact with
// the attached WAL (use Compact to fold the log). The building and
// object capture is one consistent point-in-time state; subscription
// registrations racing the call may or may not be included.
func (db *DB) Checkpoint(path string) error {
	data, err := db.capture(0)
	if err != nil {
		return err
	}
	return store.WriteSnapshot(path, data)
}

// LoadCheckpoint rebuilds an ephemeral DB from a snapshot file written
// by Checkpoint: the building is restored with exact ids, the index
// rebuilt with the original construction options, and subscriptions
// re-registered (results recomputed). The returned DB is not attached
// to a store; call Persist to make it durable again.
func LoadCheckpoint(path string) (*DB, error) {
	data, err := store.ReadSnapshot(path)
	if err != nil {
		return nil, err
	}
	idx, err := store.Rebuild(data)
	if err != nil {
		return nil, err
	}
	db := newDB(idx, qoptsOf(data.QueryFlags))
	db.restoreSubs(data.Subs)
	return db, nil
}

// Compact folds the write-ahead log into a fresh checkpoint: the log
// rotates onto a new generation, the current state is captured while
// mutators are briefly stilled, and once the new checkpoint is durable
// every older generation is deleted. The store triggers this
// automatically past DurabilityOptions.CompactBytes; calling it
// explicitly is useful before a planned shutdown.
func (db *DB) Compact() error {
	if db.st == nil {
		return fmt.Errorf("indoorq: DB has no attached store")
	}
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	data, err := func() (store.Data, error) {
		db.idx.RLock()
		defer db.idx.RUnlock()
		cut, err := db.st.BeginCheckpoint()
		if err != nil {
			return store.Data{}, err
		}
		return db.capturedLocked(cut)
	}()
	if err != nil {
		return err
	}
	return db.st.CommitCheckpoint(data)
}

// Sync flushes the group-commit buffer and fsyncs the WAL — an explicit
// durability barrier for SyncGrouped/SyncNever callers.
func (db *DB) Sync() error {
	if db.st == nil {
		return nil
	}
	return db.st.Sync()
}

// Close detaches the DB from durability: the WAL is flushed, fsynced
// and closed, and the background compactor stopped. Afterwards the DB
// still answers queries, but every mutation is refused (fail-stop) —
// reopen with OpenDir to resume. Close is idempotent; on an ephemeral
// DB it is a no-op.
//
// Close serialises against in-flight compaction: it first stops the
// background compactor, then waits for any user-called Compact to finish
// (compactMu) before closing the store, so when Close returns no
// checkpoint write or generation prune is still running against the
// directory. A Compact that starts after Close fails with a closed-store
// error instead of racing the shutdown. The lock order — compactor
// stopped first, compactMu second — matters: the compactor goroutine
// itself runs Compact under compactMu, so taking the mutex before the
// goroutine exits would deadlock.
func (db *DB) Close() error {
	if db.st == nil {
		return nil
	}
	var err error
	db.closeOnce.Do(func() {
		close(db.closedC)
		db.compactWG.Wait()
		db.compactMu.Lock()
		defer db.compactMu.Unlock()
		err = db.st.Close()
	})
	return err
}

// attachStore wires a created or recovered store into the DB and starts
// the automatic-compaction goroutine.
func (db *DB) attachStore(st *store.Store) {
	db.st = st
	db.hist = history.NewProvider(history.StoreSource{St: st}, history.Options{})
	db.closedC = make(chan struct{})
	db.compactWG.Add(1)
	go func() {
		defer db.compactWG.Done()
		for {
			select {
			case <-db.closedC:
				return
			case <-st.CompactC():
				// A failed background compaction (e.g. disk full) leaves
				// the log growing but the data intact; the next trigger
				// retries.
				_ = db.Compact()
			}
		}
	}()
}

// capture assembles checkpoint data, stilling mutators for the duration.
func (db *DB) capture(lsn uint64) (store.Data, error) {
	db.idx.RLock()
	defer db.idx.RUnlock()
	return db.capturedLocked(lsn)
}

// capturedLocked assembles checkpoint data; the caller holds the index
// still (RLock). The subscription capture is wait-free (no engine lock
// is taken — an engine writer may itself be waiting on the index).
func (db *DB) capturedLocked(lsn uint64) (store.Data, error) {
	return store.Capture(db.idx, qflagsOf(db.qopts), db.subRecs(), lsn)
}

// subRecs returns the current subscription registrations in serde form.
func (db *DB) subRecs() []serde.SubscriptionRec {
	s := db.subs.Load()
	if s == nil {
		return nil
	}
	specs := s.Specs()
	recs := make([]serde.SubscriptionRec, 0, len(specs))
	for _, sp := range specs {
		recs = append(recs, subRecOf(sp))
	}
	return recs
}

func subRecOf(sp query.SubSpec) serde.SubscriptionRec {
	rec := serde.SubscriptionRec{
		ID: int64(sp.ID), X: sp.Q.Pt.X, Y: sp.Q.Pt.Y, Floor: int64(sp.Q.Floor),
		R: sp.R, K: int64(sp.K),
	}
	if sp.Kind == query.SubKNN {
		rec.Kind = serde.SubscriptionKNN
	} else {
		rec.Kind = serde.SubscriptionRange
	}
	return rec
}

func specOfRec(rec serde.SubscriptionRec) query.SubSpec {
	sp := query.SubSpec{
		ID: int(rec.ID), Q: Pos(rec.X, rec.Y, int(rec.Floor)),
		R: rec.R, K: int(rec.K),
	}
	if rec.Kind == serde.SubscriptionKNN {
		sp.Kind = query.SubKNN
	} else {
		sp.Kind = query.SubRange
	}
	return sp
}

// restoreSubs re-registers recovered subscriptions. A subscription whose
// initial evaluation fails against the recovered topology is installed
// empty and repaired by the next topology operation — the same degraded
// mode a live subscription enters when its refresh fails.
func (db *DB) restoreSubs(recs []serde.SubscriptionRec) {
	if len(recs) == 0 {
		return
	}
	e := db.subscriptions()
	for _, rec := range recs {
		_ = e.Restore(specOfRec(rec))
	}
}

// SubscriptionRec is a serialized standing-query registration — the form
// subscriptions take in checkpoints, in the WAL, and on the replication
// stream.
type SubscriptionRec = serde.SubscriptionRec

// AdoptIndex wraps an already-built index in a DB facade: query flags are
// applied and the standing-query registrations re-installed, exactly as
// recovery does after replaying a log. Its purpose is failover — a read
// replica's Promote hands back (index, flags, subs), and AdoptIndex turns
// them into a primary. The DB is ephemeral; attach durability by
// checkpointing it into a fresh directory.
func AdoptIndex(idx *index.Index, qflags uint8, subs []SubscriptionRec) *DB {
	db := newDB(idx, qoptsOf(qflags))
	db.restoreSubs(subs)
	return db
}

// Query-processor ablation flags in the checkpoint header.
const (
	qflagDisablePruning  = 1 << 0
	qflagDisableSkeleton = 1 << 1
)

func qflagsOf(o QueryOptions) uint8 {
	var f uint8
	if o.DisablePruning {
		f |= qflagDisablePruning
	}
	if o.DisableSkeleton {
		f |= qflagDisableSkeleton
	}
	return f
}

func qoptsOf(f uint8) QueryOptions {
	return QueryOptions{
		DisablePruning:  f&qflagDisablePruning != 0,
		DisableSkeleton: f&qflagDisableSkeleton != 0,
	}
}
