package indoorq

// One benchmark per panel of the paper's evaluation figures (§V, Figures
// 12–15). Every benchmark resolves its workload through the shared fixture
// cache in internal/bench, so `go test -bench=.` regenerates the paper's
// series; cmd/benchfig prints the same data as labelled tables.
//
// Absolute times differ from the paper's 2013 C++/Windows testbed; the
// shapes (growth with |O|, r, k and uncertainty; decrease with partition
// count; pruning and skeleton effects; update-vs-precomputation gap) are
// the reproduction target. EXPERIMENTS.md records measured-vs-paper.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/object"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/store"
)

func mustFixture(b *testing.B, cfg bench.Config) *bench.F {
	b.Helper()
	f, err := bench.Fixture(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// runIRQ rotates through the fixture's query pool, one query per iteration.
func runIRQ(b *testing.B, f *bench.F, r float64, opts query.Options) {
	p := f.Processor(opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.Queries[i%len(f.Queries)]
		if _, _, err := p.RangeQuery(q, r); err != nil {
			b.Fatal(err)
		}
	}
}

func runKNN(b *testing.B, f *bench.F, k int, opts query.Options) {
	p := f.Processor(opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.Queries[i%len(f.Queries)]
		if _, _, err := p.KNNQuery(q, k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeQuery is the single-query hot-path benchmark on the
// default mall workload (§V-A defaults): one iRQ at the default radius per
// iteration, rotating the query pool. Allocation counts are part of the
// regression budget — the precompiled door-graph tier keeps the steady
// state near allocation-free.
func BenchmarkRangeQuery(b *testing.B) {
	runIRQ(b, mustFixture(b, bench.Default()), bench.DefaultRange, query.Options{})
}

// BenchmarkKNNQuery is the ikNNQ counterpart of BenchmarkRangeQuery.
func BenchmarkKNNQuery(b *testing.B) {
	runKNN(b, mustFixture(b, bench.Default()), bench.DefaultK, query.Options{})
}

// BenchmarkIRQVsObjects is Fig 12(a): iRQ time vs |O| ∈ {10K, 20K, 30K} for
// r ∈ {50, 100, 150}.
func BenchmarkIRQVsObjects(b *testing.B) {
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		for _, r := range bench.RangePoints {
			b.Run(fmt.Sprintf("objs=%d/r=%g", n, r), func(b *testing.B) {
				runIRQ(b, mustFixture(b, cfg), r, query.Options{})
			})
		}
	}
}

// BenchmarkIRQBreakdown is Fig 12(b): per-phase time of iRQ at defaults,
// reported as custom metrics (ns per phase per query).
func BenchmarkIRQBreakdown(b *testing.B) {
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		b.Run(fmt.Sprintf("objs=%d", n), func(b *testing.B) {
			f := mustFixture(b, cfg)
			b.ResetTimer()
			var pt bench.Point
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = bench.RunIRQ(f, bench.DefaultRange, 0, query.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.Filtering.Nanoseconds()), "filter-ns/query")
			b.ReportMetric(float64(pt.Subgraph.Nanoseconds()), "subgraph-ns/query")
			b.ReportMetric(float64(pt.Pruning.Nanoseconds()), "prune-ns/query")
			b.ReportMetric(float64(pt.Refinement.Nanoseconds()), "refine-ns/query")
		})
	}
}

// BenchmarkIRQVsUncertainty is Fig 12(c): iRQ time vs uncertainty region
// (radius 5/10/15, figure axis shows diameters 10/20/30).
func BenchmarkIRQVsUncertainty(b *testing.B) {
	for _, rad := range bench.RadiusPoints {
		cfg := bench.Default()
		cfg.Radius = rad
		for _, r := range bench.RangePoints {
			b.Run(fmt.Sprintf("diam=%g/r=%g", 2*rad, r), func(b *testing.B) {
				runIRQ(b, mustFixture(b, cfg), r, query.Options{})
			})
		}
	}
}

// BenchmarkIRQVsPartitions is Fig 12(d): iRQ time vs partition count
// (floors 10/20/30 ≈ 1K/2K/3K partitions) at 20K objects.
func BenchmarkIRQVsPartitions(b *testing.B) {
	for _, fl := range bench.FloorPoints {
		cfg := bench.Default()
		cfg.Floors = fl
		for _, r := range bench.RangePoints {
			b.Run(fmt.Sprintf("floors=%d/r=%g", fl, r), func(b *testing.B) {
				runIRQ(b, mustFixture(b, cfg), r, query.Options{})
			})
		}
	}
}

// BenchmarkIKNNVsObjects is Fig 13(a): ikNNQ time vs |O| for k ∈ {50, 100,
// 150}.
func BenchmarkIKNNVsObjects(b *testing.B) {
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		for _, k := range bench.KPoints {
			b.Run(fmt.Sprintf("objs=%d/k=%d", n, k), func(b *testing.B) {
				runKNN(b, mustFixture(b, cfg), k, query.Options{})
			})
		}
	}
}

// BenchmarkIKNNBreakdown is Fig 13(b): per-phase ikNNQ time.
func BenchmarkIKNNBreakdown(b *testing.B) {
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		b.Run(fmt.Sprintf("objs=%d", n), func(b *testing.B) {
			f := mustFixture(b, cfg)
			b.ResetTimer()
			var pt bench.Point
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = bench.RunKNN(f, bench.DefaultK, 0, query.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.Filtering.Nanoseconds()), "filter-ns/query")
			b.ReportMetric(float64(pt.Subgraph.Nanoseconds()), "subgraph-ns/query")
			b.ReportMetric(float64(pt.Pruning.Nanoseconds()), "prune-ns/query")
			b.ReportMetric(float64(pt.Refinement.Nanoseconds()), "refine-ns/query")
		})
	}
}

// BenchmarkIKNNVsUncertainty is Fig 13(c).
func BenchmarkIKNNVsUncertainty(b *testing.B) {
	for _, rad := range bench.RadiusPoints {
		cfg := bench.Default()
		cfg.Radius = rad
		for _, k := range bench.KPoints {
			b.Run(fmt.Sprintf("diam=%g/k=%d", 2*rad, k), func(b *testing.B) {
				runKNN(b, mustFixture(b, cfg), k, query.Options{})
			})
		}
	}
}

// BenchmarkIKNNVsPartitions is Fig 13(d).
func BenchmarkIKNNVsPartitions(b *testing.B) {
	for _, fl := range bench.FloorPoints {
		cfg := bench.Default()
		cfg.Floors = fl
		for _, k := range bench.KPoints {
			b.Run(fmt.Sprintf("floors=%d/k=%d", fl, k), func(b *testing.B) {
				runKNN(b, mustFixture(b, cfg), k, query.Options{})
			})
		}
	}
}

// BenchmarkIRQPruningRatio is Fig 14(a): filtering and pruning ratios of
// iRQ, reported as metrics (percent).
func BenchmarkIRQPruningRatio(b *testing.B) {
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		b.Run(fmt.Sprintf("objs=%d", n), func(b *testing.B) {
			f := mustFixture(b, cfg)
			b.ResetTimer()
			var pt bench.Point
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = bench.RunIRQ(f, bench.DefaultRange, 0, query.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*pt.FilterRatio, "filter-%")
			b.ReportMetric(100*pt.PruneRatio, "prune-%")
		})
	}
}

// BenchmarkIRQNoPruning is Fig 14(b): iRQ with vs without the pruning
// phase.
func BenchmarkIRQNoPruning(b *testing.B) {
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		b.Run(fmt.Sprintf("objs=%d/withPruning", n), func(b *testing.B) {
			runIRQ(b, mustFixture(b, cfg), bench.DefaultRange, query.Options{})
		})
		b.Run(fmt.Sprintf("objs=%d/withoutPruning", n), func(b *testing.B) {
			runIRQ(b, mustFixture(b, cfg), bench.DefaultRange, query.Options{DisablePruning: true})
		})
	}
}

// BenchmarkIKNNPruningRatio is Fig 14(c).
func BenchmarkIKNNPruningRatio(b *testing.B) {
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		b.Run(fmt.Sprintf("objs=%d", n), func(b *testing.B) {
			f := mustFixture(b, cfg)
			b.ResetTimer()
			var pt bench.Point
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = bench.RunKNN(f, bench.DefaultK, 0, query.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*pt.FilterRatio, "filter-%")
			b.ReportMetric(100*pt.PruneRatio, "prune-%")
		})
	}
}

// BenchmarkIKNNNoPruning is Fig 14(d): the paper reports ≥4× slowdown
// without the pruning phase.
func BenchmarkIKNNNoPruning(b *testing.B) {
	for _, n := range bench.ObjectPoints {
		cfg := bench.Default()
		cfg.Objects = n
		b.Run(fmt.Sprintf("objs=%d/withPruning", n), func(b *testing.B) {
			runKNN(b, mustFixture(b, cfg), bench.DefaultK, query.Options{})
		})
		b.Run(fmt.Sprintf("objs=%d/withoutPruning", n), func(b *testing.B) {
			runKNN(b, mustFixture(b, cfg), bench.DefaultK, query.Options{DisablePruning: true})
		})
	}
}

// BenchmarkSkeletonEffect is Fig 15(a): index units retrieved by the
// filtering phase with and without the skeleton tier, vs query range.
func BenchmarkSkeletonEffect(b *testing.B) {
	cfg := bench.Default()
	for _, r := range bench.RangePoints {
		for name, opts := range map[string]query.Options{
			"withSkeleton":    {},
			"withoutSkeleton": {DisableSkeleton: true},
		} {
			b.Run(fmt.Sprintf("r=%g/%s", r, name), func(b *testing.B) {
				f := mustFixture(b, cfg)
				b.ResetTimer()
				var pt bench.Point
				for i := 0; i < b.N; i++ {
					var err error
					pt, err = bench.RunIRQ(f, r, 0, opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(pt.Units, "units/query")
			})
		}
	}
}

// BenchmarkIndexConstruction is Fig 15(b): composite index construction
// time per layer vs partition count.
func BenchmarkIndexConstruction(b *testing.B) {
	for _, fl := range bench.FloorPoints {
		b.Run(fmt.Sprintf("floors=%d", fl), func(b *testing.B) {
			building, err := gen.Mall(gen.MallSpec{Floors: fl})
			if err != nil {
				b.Fatal(err)
			}
			objs := gen.Objects(building, gen.ObjectSpec{
				N: bench.DefaultObjects, Radius: bench.DefaultRadius,
				Instances: bench.DefaultInstances, Seed: 1,
			})
			b.ResetTimer()
			var stats index.BuildStats
			for i := 0; i < b.N; i++ {
				_, stats, err = index.Build(building, objs, index.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.TreeTier.Nanoseconds()), "tree-ns")
			b.ReportMetric(float64(stats.TopoLayer.Nanoseconds()), "topo-ns")
			b.ReportMetric(float64(stats.ObjectLayer.Nanoseconds()), "object-ns")
			b.ReportMetric(float64(stats.SkeletonTier.Nanoseconds()), "skeleton-ns")
		})
	}
}

// BenchmarkIndexUpdates is Fig 15(c): dynamic operation cost on the
// composite index — object insert/delete and partition insert/delete.
func BenchmarkIndexUpdates(b *testing.B) {
	cfg := bench.Default()
	b.Run("insertObj", func(b *testing.B) {
		f := mustFixture(b, cfg)
		qs := gen.QueryPoints(f.B, 256, 99)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := object.PointObject(object.ID(1_000_000+i), qs[i%len(qs)])
			if err := f.Idx.InsertObject(o); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			_ = f.Idx.DeleteObject(object.ID(1_000_000 + i))
		}
	})
	b.Run("deleteObj", func(b *testing.B) {
		f := mustFixture(b, cfg)
		qs := gen.QueryPoints(f.B, 256, 99)
		for i := 0; i < b.N; i++ {
			o := object.PointObject(object.ID(2_000_000+i), qs[i%len(qs)])
			if err := f.Idx.InsertObject(o); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.Idx.DeleteObject(object.ID(2_000_000 + i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insertPartition", func(b *testing.B) {
		f := mustFixture(b, cfg)
		// Cycle one room: remove it once, then time (re-)insertions.
		var room PartitionID
		for _, p := range f.B.Partitions() {
			if p.Kind == 0 {
				room = p.ID
				break
			}
		}
		rect := f.B.Partition(room).Bounds()
		if err := f.Idx.RemovePartition(room); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := f.B.AddRoom(0, rect)
			if err := f.Idx.AddPartition(p.ID); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := f.Idx.RemovePartition(p.ID); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("deletePartition", func(b *testing.B) {
		f := mustFixture(b, cfg)
		var room PartitionID
		for _, p := range f.B.Partitions() {
			if p.Kind == 0 {
				room = p.ID
				break
			}
		}
		rect := f.B.Partition(room).Bounds()
		if err := f.Idx.RemovePartition(room); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := f.B.AddRoom(0, rect)
			if err := f.Idx.AddPartition(p.ID); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := f.Idx.RemovePartition(p.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchThroughput is the concurrent-serving experiment (not in
// the paper): aggregate batch throughput of the worker pool vs worker
// count, on the Floors=2, N=1000 mall workload. On multi-core hardware the
// queries/sec metric scales with workers (≥2× at 8 workers vs 1); on one
// CPU the series is flat — the interesting number is the metric, not the
// ns/op. A batch of 200 queries cycles the fixture's query pool.
func BenchmarkBatchThroughput(b *testing.B) {
	cfg := bench.ServeWorkload()
	const batch = 200
	for _, workers := range bench.ConcurrencyWorkers {
		b.Run(fmt.Sprintf("iRQ/workers=%d", workers), func(b *testing.B) {
			f := mustFixture(b, cfg)
			b.ReportAllocs()
			b.ResetTimer()
			var m serve.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				m, err = bench.RunBatchIRQ(f, bench.DefaultRange, batch, workers, query.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.Throughput, "queries/sec")
			b.ReportMetric(float64(m.P50.Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(m.P99.Nanoseconds()), "p99-ns")
		})
		b.Run(fmt.Sprintf("ikNN/workers=%d", workers), func(b *testing.B) {
			f := mustFixture(b, cfg)
			b.ReportAllocs()
			b.ResetTimer()
			var m serve.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				m, err = bench.RunBatchKNN(f, 10, batch, workers, query.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.Throughput, "queries/sec")
			b.ReportMetric(float64(m.P50.Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(m.P99.Nanoseconds()), "p99-ns")
		})
	}
}

// BenchmarkBatchUnderWrites measures reader throughput degradation while a
// writer goroutine continuously applies MoveObject updates — the
// read/write contention profile of the serving layer.
func BenchmarkBatchUnderWrites(b *testing.B) {
	cfg := bench.ServeWorkload()
	f := mustFixture(b, cfg)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			o := f.Objs[i%len(f.Objs)]
			_ = f.Idx.MoveObject(o)
			i++
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	var m serve.Metrics
	for i := 0; i < b.N; i++ {
		var err error
		m, err = bench.RunBatchIRQ(f, bench.DefaultRange, 100, 4, query.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Throughput, "queries/sec")
	b.ReportMetric(float64(m.P99.Nanoseconds()), "p99-ns")
}

// BenchmarkQueriesUnderChurn measures single-query latency percentiles
// while a writer re-reports object positions at a FIXED offered churn
// rate — the read/write-interference profile of a dynamic indoor
// deployment (the paper's continuously moving objects, e.g. a positioning
// system delivering a bounded stream of location reports). Pacing the
// writer is what makes the comparison across locking disciplines honest:
// an unthrottled writer loop measures how fast the writer can spin (a
// global RWMutex throttles it implicitly; snapshot isolation does not),
// not what readers experience at a given update load. The writer applies
// each tick's moves through ApplyObjectUpdates, so one tick is one
// snapshot swap; the pre-refactor RWMutex baseline ran the identical
// benchmark with the tick applied as sequential MoveObject calls (the only
// form that code offered). The interesting numbers are the p50-ns/p99-ns
// metrics; README "Performance" records both sides.
//
// The wal=on variants attach the durable store (group-commit WAL, default
// policy) to the same fixture: every tick is encoded and logged inside
// the writer mutex before its snapshot publishes. README "Durability"
// records the overhead; the acceptance bar (sustained ≥85% of wal=off at
// the paced rate) is enforced by TestWALChurnOverheadSmoke.
func BenchmarkQueriesUnderChurn(b *testing.B) {
	const tickEvery = 10 * time.Millisecond
	for _, perTick := range []int{20, 100} { // 2K and 10K moves/sec offered
		for _, wal := range []bool{false, true} {
			rate := perTick * int(time.Second/tickEvery)
			b.Run(fmt.Sprintf("moves_per_sec=%d/wal=%v", rate, wal), func(b *testing.B) {
				f := mustFixture(b, bench.Default())
				if wal {
					// The fixture index is cached across benchmarks:
					// detach the store's hook before returning it.
					st, err := store.Create(b.TempDir(), f.Idx, 0, nil, store.Options{})
					if err != nil {
						b.Fatal(err)
					}
					defer func() {
						f.Idx.SetCommitHook(nil)
						st.Close()
					}()
				}
				p := f.Processor(query.Options{})
				stop := make(chan struct{})
				var wg sync.WaitGroup
				var applied atomic.Int64
				wg.Add(1)
				go func() {
					defer wg.Done()
					next := time.Now()
					i := 0
					ups := make([]index.ObjectUpdate, perTick)
					for {
						select {
						case <-stop:
							return
						default:
						}
						next = next.Add(tickEvery)
						if d := time.Until(next); d > 0 {
							time.Sleep(d)
						}
						for j := range ups {
							ups[j] = index.ObjectUpdate{Op: index.UpdateMove, Object: f.Objs[(i+j)%len(f.Objs)]}
						}
						i += perTick
						if err := f.Idx.ApplyObjectUpdates(ups); err != nil {
							b.Error(err)
							return
						}
						applied.Add(int64(perTick))
					}
				}()
				lats := make([]time.Duration, 0, b.N)
				start := time.Now()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q := f.Queries[i%len(f.Queries)]
					t0 := time.Now()
					if _, _, err := p.RangeQuery(q, bench.DefaultRange); err != nil {
						b.Fatal(err)
					}
					lats = append(lats, time.Since(t0))
				}
				b.StopTimer()
				elapsed := time.Since(start)
				close(stop)
				wg.Wait()
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				if len(lats) > 0 {
					b.ReportMetric(float64(lats[len(lats)/2].Nanoseconds()), "p50-ns")
					b.ReportMetric(float64(lats[(len(lats)*99)/100].Nanoseconds()), "p99-ns")
				}
				if s := elapsed.Seconds(); s > 0 {
					b.ReportMetric(float64(applied.Load())/s, "moves/sec")
				}
			})
		}
	}
}

// BenchmarkPrecomputation is Fig 15(d): the door-to-door pre-computation
// cost of the baseline alternative, vs partition count. The per-op time is
// the measured per-source Dijkstra; the extrapolated all-pairs total is
// reported as a metric in seconds (the paper measures >0.5 h at 2K
// partitions on its testbed).
func BenchmarkPrecomputation(b *testing.B) {
	for _, fl := range bench.FloorPoints {
		cfg := bench.Default()
		cfg.Floors = fl
		b.Run(fmt.Sprintf("floors=%d", fl), func(b *testing.B) {
			f := mustFixture(b, cfg)
			b.ResetTimer()
			var total float64
			for i := 0; i < b.N; i++ {
				_, t, _ := baseline.EstimatePrecomputeTime(f.Idx, 16)
				total = t.Seconds()
			}
			b.ReportMetric(total, "allpairs-sec")
		})
	}
}

// BenchmarkMonitorScale sweeps the number of standing queries against
// localized vs uniform movement churn: one iteration is one coalesced
// 16-move batch through the subscription engine (snapshot swap + routed
// reconciliation) on the shared bench.MonitorWorkload. The reported
// routed/op and affected-subs/op metrics are the scaling argument: under
// localized churn the inverted unit→query router admits a near-constant
// subscription subset, so per-update cost grows sublinearly in registered
// subscriptions (routed ≪ registered).
func BenchmarkMonitorScale(b *testing.B) {
	for _, nq := range []int{10, 100, 1000, 10000} {
		for _, churn := range []string{"localized", "uniform"} {
			b.Run(fmt.Sprintf("subs=%d/churn=%s", nq, churn), func(b *testing.B) {
				w, err := bench.NewMonitorWorkload(nq, churn == "localized")
				if err != nil {
					b.Fatal(err)
				}
				before := w.Engine.Stats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.Engine.ApplyObjectUpdates(w.Batches[i%len(w.Batches)]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := w.Engine.Stats()
				n := float64(b.N)
				b.ReportMetric(float64(st.RoutedPairs-before.RoutedPairs)/n, "routed/op")
				b.ReportMetric(float64(st.AffectedSubs-before.AffectedSubs)/n, "affected-subs/op")
			})
		}
	}
}

// BenchmarkReconcileSharded sweeps reconciliation shard width against
// subscription count on the city-scale churn workload: one iteration is
// one coalesced 32-move batch (snapshot swap + sharded reconciliation).
// The workload is stationary jitter, so the engine is shared across the
// sweep and each width measures the same steady state; the merged event
// stream is byte-identical at every width (the equivalence tests prove
// it), making the widths directly comparable. On a single-core host the
// width-1 and width-n paths should be near-identical — the sweep is the
// scaling instrument for multi-core hosts.
func BenchmarkReconcileSharded(b *testing.B) {
	for _, subs := range []int{1000, 10000} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("subs=%d/shards=%d", subs, shards), func(b *testing.B) {
				w, err := bench.NewCityChurn(bench.CitySmoke(), subs)
				if err != nil {
					b.Fatal(err)
				}
				w.Engine.SetShards(shards)
				before := w.Engine.Stats()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.Engine.ApplyObjectUpdates(w.Batches[i%len(w.Batches)]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := w.Engine.Stats()
				n := float64(b.N)
				b.ReportMetric(float64(st.RoutedPairs-before.RoutedPairs)/n, "routed/op")
				b.ReportMetric(float64(st.AffectedSubs-before.AffectedSubs)/n, "affected-subs/op")
			})
		}
	}
}

// BenchmarkCityMixed is the city-scale mixed panel: one iteration is one
// round of the read/write/subscription mix (one move batch through the
// engine, one iRQ, one ikNN). The benchfig "city" panel publishes the
// corresponding p99 latency budget at the full CityDefault scale.
func BenchmarkCityMixed(b *testing.B) {
	w, err := bench.NewCityChurn(bench.CitySmoke(), 1000)
	if err != nil {
		b.Fatal(err)
	}
	p := query.New(w.Idx, query.Options{})
	queries := gen.QueryPoints(w.Idx.Building(), 64, 7106)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Engine.ApplyObjectUpdates(w.Batches[i%len(w.Batches)]); err != nil {
			b.Fatal(err)
		}
		if _, _, err := p.RangeQuery(queries[i%len(queries)], 50); err != nil {
			b.Fatal(err)
		}
		if _, _, err := p.KNNQuery(queries[(i+7)%len(queries)], 10); err != nil {
			b.Fatal(err)
		}
	}
}
