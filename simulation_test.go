package indoorq

// End-to-end simulation: a continuous-monitoring workload interleaving
// object movement, topology changes and both query types, cross-checked
// against the exhaustive oracle after every epoch. This is the integration
// test for the whole stack — generator, index maintenance, distance engine
// and query processors working together over time.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/indoor"
	"repro/internal/object"
)

func TestContinuousMonitoringSimulation(t *testing.T) {
	b, err := gen.Mall(gen.MallSpec{Floors: 2})
	if err != nil {
		t.Fatal(err)
	}
	objs := gen.Objects(b, gen.ObjectSpec{N: 150, Radius: 8, Instances: 15, Seed: 61})
	db, _, err := Open(b, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := baseline.NewOracle(db.Index())
	rng := rand.New(rand.NewSource(62))
	queries := gen.QueryPoints(b, 20, 63)

	check := func(epoch int) {
		q := queries[epoch%len(queries)]
		got, _, err := db.RangeQuery(q, 120)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Range(q, 120)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("epoch %d: iRQ %d results, oracle %d", epoch, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i] {
				t.Fatalf("epoch %d: iRQ result %d is %d, oracle %d", epoch, i, got[i].ID, want[i])
			}
		}
		kres, _, err := db.KNNQuery(q, 15)
		if err != nil {
			t.Fatal(err)
		}
		ktop, err := oracle.KNN(q, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(kres) != len(ktop) {
			t.Fatalf("epoch %d: kNN %d results, oracle %d", epoch, len(kres), len(ktop))
		}
		kth := ktop[len(ktop)-1].D
		all, err := oracle.AllDistances(q)
		if err != nil {
			t.Fatal(err)
		}
		distOf := make(map[object.ID]float64, len(all))
		for _, od := range all {
			distOf[od.ID] = od.D
		}
		wantSet := make(map[object.ID]bool)
		for _, od := range ktop {
			wantSet[od.ID] = true
		}
		for _, r := range kres {
			if !wantSet[r.ID] && math.Abs(distOf[r.ID]-kth) > 1e-6 {
				t.Fatalf("epoch %d: kNN result %d (d=%g) not in oracle top-k (kth=%g)",
					epoch, r.ID, distOf[r.ID], kth)
			}
		}
	}

	var closedDoor DoorID = -1
	var splitA, splitB PartitionID = -1, -1
	for epoch := 0; epoch < 10; epoch++ {
		// Move ~20 objects with the adjacency-accelerated update.
		moved := 0
		for _, o := range objs {
			if moved == 20 {
				break
			}
			c := o.Center
			next := Pos(c.Pt.X+rng.Float64()*10-5, c.Pt.Y+rng.Float64()*10-5, c.Floor)
			if db.LocatePartition(next) < 0 {
				continue
			}
			moved++
			upd := object.SampleGaussian(rng, o.ID, next, o.Radius, 15)
			if err := db.MoveObject(upd); err != nil {
				t.Fatal(err)
			}
			*o = *upd // keep the local view in sync for later epochs
		}

		switch epoch % 5 {
		case 1: // close a random door
			doors := b.Doors()
			closedDoor = doors[rng.Intn(len(doors))].ID
			if err := db.SetDoorClosed(closedDoor, true); err != nil {
				t.Fatal(err)
			}
		case 2: // reopen it
			if err := db.SetDoorClosed(closedDoor, false); err != nil {
				t.Fatal(err)
			}
		case 3: // mount a sliding wall in some room
			for _, p := range b.Partitions() {
				if p.Kind == indoor.Room && len(p.Doors) > 0 {
					r := p.Bounds()
					a, bb, err := db.SplitPartition(p.ID, true, (r.MinX+r.MaxX)/2)
					if err != nil {
						t.Fatal(err)
					}
					splitA, splitB = a, bb
					break
				}
			}
		case 4: // dismount it
			if splitA >= 0 {
				if _, err := db.MergePartitions(splitA, splitB); err != nil {
					t.Fatal(err)
				}
				splitA, splitB = -1, -1
			}
		}

		if err := db.Index().CheckInvariants(); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		check(epoch)
	}
}

// Query results must be deterministic: the same query twice returns
// identical results, including after an update churn.
func TestQueryDeterminism(t *testing.T) {
	b, err := gen.Mall(gen.MallSpec{Floors: 1})
	if err != nil {
		t.Fatal(err)
	}
	objs := gen.Objects(b, gen.ObjectSpec{N: 100, Radius: 10, Instances: 10, Seed: 71})
	db, _, err := Open(b, objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := gen.QueryPoints(b, 1, 72)[0]
	a1, _, err := db.RangeQuery(q, 90)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := db.RangeQuery(q, 90)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatal("repeat query changed result count")
	}
	for i := range a1 {
		if a1[i].ID != a2[i].ID {
			t.Fatal("repeat query changed result order")
		}
		d1, d2 := a1[i].Distance, a2[i].Distance
		if !(math.IsNaN(d1) && math.IsNaN(d2)) && d1 != d2 {
			t.Fatal("repeat query changed distances")
		}
	}
}
